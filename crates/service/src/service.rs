//! The concurrent disclosure-control front door.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::{Arc, OnceLock};

use fdc_core::{
    CachedLabeler, PackedLabel, PendingBatch, QueryLabeler, SecurityViews, SharedQueryInterner,
    WorkerPool, DEFAULT_CACHE_CAPACITY, MAX_PACKED_VIEWS_PER_RELATION,
    SMALL_BATCH_SEQUENTIAL_THRESHOLD,
};
use fdc_cq::intern::{QueryId, QueryInterner};
use fdc_cq::{ConjunctiveQuery, RelId};
use fdc_durability::codec::{put_len, CodecError, Cursor};
use fdc_durability::{
    checkpoint_seqs_in, latest_checkpoint_in, prune_checkpoints_in, prune_segments_in, read_log_in,
    sweep_stale_temps_in, write_checkpoint_in, Clock, DurabilityConfig, StdVfs, SystemClock, Vfs,
    WalStats, WalWriter,
};
use fdc_policy::{
    audit_app, requested_views, AuditReport, Decision, PrincipalId, SecurityPolicy,
    ShardedPolicyStore, MAX_PARTITIONS,
};

use crate::durable::{self, DurableState, RecoveryReport, WalOp};
use crate::health::{DurabilityHealth, ServiceMode};
use crate::ops::{Operation, Response, ServiceError};
use crate::snapshot::ServiceSnapshot;

/// Checkpoints retained on disk after
/// [`DisclosureService::checkpoint`] prunes: the newest plus one
/// predecessor, so a checkpoint file corrupted in place (partial write,
/// bit rot) still leaves a valid older image to recover from.
const CHECKPOINTS_KEPT: usize = 2;

/// How the service reconciles its label caches with online mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationMode {
    /// Per-relation epoch tracking: a view-universe change to relation `R`
    /// bumps only `R`'s epoch, and cached labels lazily re-derive just
    /// their stale atoms.  Policy grants/revokes never touch the label
    /// caches at all (labels do not depend on policies).  This is the
    /// production mode.
    #[default]
    Incremental,
    /// Flush the entire label cache on **every** mutation — the
    /// conservative strategy a service without dependency tracking must
    /// adopt ("something about disclosure control changed, recompute the
    /// world").  Kept as the Figure 7 baseline; every flush forces the full
    /// labeling pipeline to re-run for each distinct query shape until the
    /// cache re-warms.
    FlushOnMutation,
}

/// Configuration of a [`DisclosureService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of policy shards decision application fans out across.
    /// `0` means "the host's available parallelism".  The shard count is
    /// part of a durable service's on-disk layout (round-robin principal
    /// placement), so recovery keeps the checkpoint's count.
    pub num_shards: usize,
    /// Number of persistent worker threads in the service's
    /// [`WorkerPool`] — the labeling fan-out width of
    /// [`run_batch`](DisclosureService::run_batch) and
    /// [`run_pipelined`](DisclosureService::run_pipelined), and the
    /// execution plane of the per-shard decision fan-out.  `0` means "the
    /// host's available parallelism"; `1` serves every batch inline on the
    /// calling thread with no pool at all.
    pub workers: usize,
    /// Per-principal cap on the observed-workload history that backs
    /// `AuditApp` (a bounded FIFO of recently submitted queries).  `0`
    /// disables history recording — and with it auditing — for
    /// memory-critical deployments.
    pub history_cap: usize,
    /// Cache-invalidation strategy; see [`InvalidationMode`].
    pub invalidation: InvalidationMode,
    /// Minimum admission-run length for the pooled fan-out: shorter runs
    /// are labeled and decided sequentially on the calling thread, because
    /// even hand-off to an already-running worker costs more than the
    /// handful of lookups being parallelized.  Applied to both stages (the
    /// labeling fan-out and the policy store's per-shard apply).  `0`
    /// forces the parallel path for every non-trivial run.
    pub parallel_threshold: usize,
    /// Write-ahead-log tuning (group-commit batch, segment rotation
    /// size, fsync) for services opened with
    /// [`open_durable`](DisclosureService::open_durable).  Ignored by
    /// in-memory services built with [`new`](DisclosureService::new).
    pub durability: DurabilityConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            num_shards: 0,
            workers: 0,
            history_cap: 1024,
            invalidation: InvalidationMode::Incremental,
            parallel_threshold: SMALL_BATCH_SEQUENTIAL_THRESHOLD,
            durability: DurabilityConfig::default(),
        }
    }
}

/// Worker-plane counters of a [`DisclosureService`]: what the persistent
/// [`WorkerPool`] did on this service's behalf.  Pure observability — two
/// services that served the same stream with different worker counts hold
/// identical extensional state but different `ParallelStats`, which is why
/// [`ServiceStats`] equality ignores this block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParallelStats {
    /// Parallel width of the service's worker plane (1 = inline).
    pub workers: usize,
    /// Labeling batches dispatched to the pool (one per pipelined segment
    /// or pooled admission run).
    pub segments_labeled: u64,
    /// Tasks executed by each pool worker, in worker order.  Empty until
    /// the pool has been spun up (and on single-worker services).
    pub tasks_per_worker: Vec<u64>,
    /// Tasks the coordinating thread ran itself (single-worker services,
    /// single-task batches, full-queue backpressure).
    pub tasks_inline: u64,
    /// Tasks a worker stole from a sibling's queue tail (skewed segments).
    pub steals: u64,
    /// Pushes that found a worker queue at capacity and spilled over.
    pub queue_full_stalls: u64,
    /// Times a pool worker found every queue empty and parked.
    pub queue_empty_stalls: u64,
    /// Epoch snapshots whose cache work was drained back into the live
    /// labeler after the minimum published epoch passed them.
    pub snapshots_reclaimed: u64,
}

/// Service-level counters, complementing the labeler's
/// [`CacheStats`](fdc_core::CacheStats).
///
/// Equality compares the **extensional** counters only — admissions,
/// mutations, flushes, audits and durability health.  The
/// [`parallel`](Self::parallel) block describes *how* the work was executed
/// (worker tasks, steals, stalls, reclamations), which legitimately differs
/// between executors serving identical streams, so it is excluded from
/// `==` (the property suite asserts batch/pipelined stats equality across
/// executors with different worker planes).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Admissions served (submits + checks that reached a decision).
    pub admissions: u64,
    /// Mutations applied (grants + revokes + view additions).
    pub mutations: u64,
    /// Full label-cache flushes performed (only in
    /// [`InvalidationMode::FlushOnMutation`]).
    pub flushes: u64,
    /// Audits served.
    pub audits: u64,
    /// Durability health (WAL, checkpoint and serving-mode counters).
    /// All zeros on in-memory services.
    pub durability: DurabilityHealth,
    /// Worker-plane counters (excluded from equality; see above).
    pub parallel: ParallelStats,
}

impl PartialEq for ServiceStats {
    fn eq(&self, other: &Self) -> bool {
        self.admissions == other.admissions
            && self.mutations == other.mutations
            && self.flushes == other.flushes
            && self.audits == other.audits
            && self.durability == other.durability
    }
}

impl Eq for ServiceStats {}

/// The single front door of the disclosure-control system.
///
/// A `DisclosureService` owns the three moving parts the static pipeline of
/// PR 2 kept frozen — the [`SecurityViews`] registry (inside the labeler),
/// the epoch-aware [`CachedLabeler`] and the [`ShardedPolicyStore`] — and
/// serves a mixed stream of admissions, policy mutations, view-universe
/// mutations and audits:
///
/// * **Admissions** (`Submit` / `Check`) run the fused hot path: canonical
///   cache hit → packed label → bit-mask decision.
///   [`run_batch`](Self::run_batch) executes maximal admission runs on the
///   service's persistent [`WorkerPool`] — labeling sharded over the shared
///   cache, decisions sharded by principal.
/// * **Policy mutations** (`GrantView` / `RevokeView`) re-intern the
///   principal's compiled policy while preserving its consistency word and
///   counters; the label caches are untouched (labels do not depend on
///   policies), so a grant is an O(policy size) operation however warm the
///   cache is.
/// * **View-universe mutations** (`AddSecurityView`) register the view
///   online and bump only the affected relation's epoch: cached labels over
///   other relations keep hitting, and stale entries re-derive just their
///   stale atoms on next use ([`InvalidationMode::Incremental`]).
/// * **Audits** (`AuditApp`) compare a principal's requested permissions
///   (derived from its live policy) against its observed workload (a
///   bounded per-principal history of submitted queries), surfacing
///   overprivileged apps exactly as Section 2.2 envisions.
///
/// Mutations take effect at their position in the stream: a grant between
/// two submits is observed by the second and not the first, which is what
/// makes the request loop's run-splitting equivalent to strictly sequential
/// processing (asserted by the property tests).
#[derive(Debug)]
pub struct DisclosureService {
    labeler: CachedLabeler,
    /// Handle to the labeler's query interner — the id authority behind
    /// every `SubmitInterned` / `CheckInterned` operation.  The service
    /// *owns* the interner in the architectural sense: callers obtain ids
    /// through [`intern`](Self::intern) (or this handle) and the service
    /// validates them at admission time.
    interner: SharedQueryInterner,
    store: ShardedPolicyStore,
    /// Per-principal FIFO of recently submitted queries (capped at
    /// `config.history_cap`), the observed workload `AuditApp` audits
    /// against.  Empty vectors when history is disabled.
    history: Vec<VecDeque<ConjunctiveQuery>>,
    config: ServiceConfig,
    stats: ServiceStats,
    /// The write-ahead log, present only on services opened with
    /// [`open_durable`](Self::open_durable).  `None` during recovery
    /// replay too, which is what keeps replayed operations from being
    /// re-logged.
    durable: Option<DurableState>,
    /// The worker plane: the lazily spawned per-service [`WorkerPool`]
    /// plus the coordinator-side counters of [`ParallelStats`].
    parallel: ParallelPlane,
}

/// The service's worker plane.  The pool is spawned on first parallel use
/// (`config.workers` threads), so the many short-lived services the test
/// and recovery paths build never pay thread spawns.
#[derive(Debug, Default)]
struct ParallelPlane {
    pool: OnceLock<Arc<WorkerPool>>,
    /// Labeling batches dispatched to the pool.
    segments_labeled: u64,
    /// Epoch snapshots drained back into the live labeler.
    snapshots_reclaimed: u64,
}

/// The query operand of one admission, as carried through the request loop:
/// a borrowed boxed query or a pre-interned id.
#[derive(Clone, Copy)]
enum AdmissionQuery<'a> {
    Plain(&'a ConjunctiveQuery),
    Interned(QueryId),
}

impl DisclosureService {
    /// Builds a service over a security-view registry.
    ///
    /// # Panics
    ///
    /// Panics if any relation of the registry already exceeds the packed
    /// per-relation view budget
    /// ([`MAX_PACKED_VIEWS_PER_RELATION`] = 32): the service serves the
    /// packed 64-bit label path end to end, where wider masks would
    /// silently truncate.
    pub fn new(views: SecurityViews, config: ServiceConfig) -> Self {
        for r in 0..views.catalog().len() {
            let relation = RelId(r as u32);
            assert!(
                views.views_for_relation(relation).len() <= MAX_PACKED_VIEWS_PER_RELATION,
                "relation `{}` exceeds the {MAX_PACKED_VIEWS_PER_RELATION}-view packed budget; \
                 wide registries must stay on the unpacked labelers",
                views.catalog().name(relation)
            );
        }
        let num_shards = if config.num_shards == 0 {
            available_threads()
        } else {
            config.num_shards
        };
        let workers = if config.workers == 0 {
            available_threads()
        } else {
            config.workers
        };
        let labeler = CachedLabeler::new(views);
        let interner = labeler.interner();
        let mut store = ShardedPolicyStore::new(num_shards);
        store.set_parallel_threshold(config.parallel_threshold);
        DisclosureService {
            labeler,
            interner,
            store,
            history: Vec::new(),
            config: ServiceConfig {
                num_shards,
                workers,
                ..config
            },
            stats: ServiceStats::default(),
            durable: None,
            parallel: ParallelPlane::default(),
        }
    }

    /// Builds a service with the default configuration.
    pub fn with_defaults(views: SecurityViews) -> Self {
        DisclosureService::new(views, ServiceConfig::default())
    }

    /// Registers a principal with its policy and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more than [`MAX_PARTITIONS`] partitions,
    /// or if a durable service cannot log the registration (it is
    /// serving degraded, or the log failed on this very record — see
    /// [`try_register_principal`](Self::try_register_principal) for the
    /// non-panicking form).
    pub fn register_principal(&mut self, policy: SecurityPolicy) -> PrincipalId {
        self.try_register_principal(policy)
            .unwrap_or_else(|err| panic!("principal registration failed: {err}"))
    }

    /// [`register_principal`](Self::register_principal), answering
    /// degraded-mode refusals as
    /// [`ServiceError::DurabilityUnavailable`] instead of panicking.
    /// Registration is a mutation: a durable service must not
    /// acknowledge one it cannot make durable.
    ///
    /// # Panics
    ///
    /// Panics if the policy has more than [`MAX_PARTITIONS`] partitions.
    pub fn try_register_principal(
        &mut self,
        policy: SecurityPolicy,
    ) -> Result<PrincipalId, ServiceError> {
        self.guard_mutation()?;
        // An over-wide policy panics in the store below *without* having
        // been logged: a record for an operation that never applied must
        // not reach the log.
        if self.durable.is_some() && policy.len() <= MAX_PARTITIONS {
            let mut payload = Vec::new();
            durable::encode_register(&policy, &mut payload);
            self.log_now(&payload)?;
        }
        Ok(self.register_principal_unlogged(policy))
    }

    /// [`register_principal`](Self::register_principal) without the WAL
    /// hook — the shared application step, also the replay entry point.
    fn register_principal_unlogged(&mut self, policy: SecurityPolicy) -> PrincipalId {
        let id = self.store.register(policy);
        self.history.push(VecDeque::new());
        id
    }

    /// The security-view registry (owned by the labeling stage).
    pub fn registry(&self) -> &SecurityViews {
        self.labeler.security_views()
    }

    /// The labeling stage, for cache statistics and direct labeling.
    pub fn labeler(&self) -> &CachedLabeler {
        &self.labeler
    }

    /// The service's shared query-interner handle — the id authority behind
    /// interned admissions.
    ///
    /// Workload generators clone this handle to intern their query pools
    /// once (see `fdc_ecosystem::ChurnGenerator::attach_interner`) and then
    /// stream 8-byte [`QueryId`]s instead of boxed queries.
    pub fn interner(&self) -> SharedQueryInterner {
        self.labeler.interner()
    }

    /// Interns a query into the service's id space, returning the dense
    /// [`QueryId`] that [`submit_interned`](Self::submit_interned) /
    /// [`check_interned`](Self::check_interned) and the
    /// `SubmitInterned` / `CheckInterned` operations accept.
    pub fn intern(&self, query: &ConjunctiveQuery) -> QueryId {
        self.labeler.intern(query)
    }

    /// The enforcement stage.
    pub fn store(&self) -> &ShardedPolicyStore {
        &self.store
    }

    /// The effective configuration (with `num_shards` resolved).
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Service-level operation counters, including the durability
    /// health block (all zeros on in-memory services).
    pub fn stats(&self) -> ServiceStats {
        let mut stats = self.stats.clone();
        stats.durability = self.durability_health();
        stats.parallel = self.parallel_stats();
        stats
    }

    /// The service's worker pool, spawned on first use with the resolved
    /// `config.workers` width (a width of 1 spawns no threads; every batch
    /// runs inline on the calling thread).
    fn worker_pool(&self) -> &Arc<WorkerPool> {
        self.parallel
            .pool
            .get_or_init(|| Arc::new(WorkerPool::new(self.config.workers)))
    }

    /// A shared handle to the service's worker pool — the *single*
    /// execution plane every parallel path of this service runs on
    /// (labeling fan-outs, per-shard decision fan-outs, off-lock
    /// checkpoint encoding).  Callers that run work on the service's
    /// behalf while not holding the service lock (see
    /// [`BackgroundCheckpointer`](crate::BackgroundCheckpointer)) clone
    /// this handle instead of spinning up a pool of their own; the
    /// process-wide [`WorkerPool::global`] fallback stays untouched.
    pub fn pool_handle(&self) -> Arc<WorkerPool> {
        Arc::clone(self.worker_pool())
    }

    /// Materializes the worker-plane block of [`stats`](Self::stats) from
    /// the coordinator counters plus the pool's own counters (zeros until
    /// the pool has been spun up).
    fn parallel_stats(&self) -> ParallelStats {
        let mut parallel = ParallelStats {
            workers: self.config.workers,
            segments_labeled: self.parallel.segments_labeled,
            snapshots_reclaimed: self.parallel.snapshots_reclaimed,
            ..ParallelStats::default()
        };
        if let Some(pool) = self.parallel.pool.get() {
            let pool_stats = pool.stats();
            parallel.tasks_per_worker = pool_stats.tasks_per_worker;
            parallel.tasks_inline = pool_stats.tasks_inline;
            parallel.steals = pool_stats.steals;
            parallel.queue_full_stalls = pool_stats.queue_full_stalls;
            parallel.queue_empty_stalls = pool_stats.queue_empty_stalls;
        }
        parallel
    }

    /// The current serving mode.  In-memory services are always
    /// [`ServiceMode::Healthy`]; a durable service degrades to
    /// read-only serving when its write-ahead log fails permanently and
    /// is promoted back by a successful
    /// [`checkpoint`](Self::checkpoint).
    pub fn mode(&self) -> ServiceMode {
        self.durable
            .as_ref()
            .map_or(ServiceMode::Healthy, |durable| durable.mode)
    }

    /// True when the service is serving degraded (mutations refused,
    /// admissions from memory).
    pub fn is_degraded(&self) -> bool {
        matches!(self.mode(), ServiceMode::Degraded(_))
    }

    /// What recovery found when this service was opened with
    /// [`open_durable`](Self::open_durable); `None` on in-memory
    /// services.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.durable.as_ref().map(|durable| durable.report)
    }

    /// The durability health block of [`stats`](Self::stats).
    fn durability_health(&self) -> DurabilityHealth {
        let Some(durable) = &self.durable else {
            return DurabilityHealth::default();
        };
        let wal = durable.wal_stats();
        DurabilityHealth {
            wal_appends: wal.appends,
            wal_commits: wal.commits,
            wal_fsyncs: wal.fsyncs,
            wal_fsync_failures: wal.fsync_failures,
            wal_retries: wal.retries,
            wal_segment_recoveries: wal.segment_recoveries,
            wal_records_committed: wal.records_committed,
            wal_max_commit_records: wal.max_commit_records,
            mode_transitions: durable.mode_transitions,
            checkpoints: durable.checkpoints,
            checkpoint_failures: durable.checkpoint_failures,
            last_checkpoint_seq: durable.last_checkpoint_seq,
            log_since_checkpoint: durable.last_seq.saturating_sub(durable.last_checkpoint_seq),
        }
    }

    /// The typed refusal every state-changing entry point leads with on
    /// a degraded service: a durable service must never acknowledge a
    /// mutation it cannot make durable.
    fn guard_mutation(&self) -> Result<(), ServiceError> {
        if self.is_degraded() {
            Err(ServiceError::DurabilityUnavailable)
        } else {
            Ok(())
        }
    }

    /// Number of registered principals.
    pub fn num_principals(&self) -> usize {
        self.store.len()
    }

    /// Total `(answered, refused)` across all principals.
    pub fn totals(&self) -> (u64, u64) {
        self.store.totals()
    }

    fn validate_principal(&self, principal: PrincipalId) -> Result<(), ServiceError> {
        if principal.index() < self.store.len() {
            Ok(())
        } else {
            Err(ServiceError::UnknownPrincipal(principal))
        }
    }

    fn validate_query_id(&self, query: QueryId) -> Result<(), ServiceError> {
        let known = self
            .interner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains(query);
        if known {
            Ok(())
        } else {
            Err(ServiceError::UnknownQuery(query))
        }
    }

    /// True when the observed-workload history — and with it auditing — is
    /// enabled.  The single home of the `history_cap == 0` convention,
    /// shared by [`record`](Self::record),
    /// [`record_interned`](Self::record_interned) and
    /// [`audit_app`](Self::audit_app).
    fn history_enabled(&self) -> bool {
        self.config.history_cap != 0
    }

    /// Records a submitted query into the principal's observed workload,
    /// evicting from the **front** until the cap holds: at exactly-cap the
    /// oldest entry ages out and the newest submission always lands in the
    /// audited workload (regression-tested at cap and cap + 1).
    fn record(&mut self, principal: PrincipalId, query: &ConjunctiveQuery) {
        if !self.history_enabled() {
            return;
        }
        let log = &mut self.history[principal.index()];
        while log.len() >= self.config.history_cap {
            log.pop_front();
        }
        log.push_back(query.clone());
    }

    /// Records an interned submission: the id resolves back through the
    /// interner (only when history is enabled — the hot fig7 configuration
    /// disables it and pays nothing here).
    fn record_interned(&mut self, principal: PrincipalId, query: QueryId) {
        if !self.history_enabled() {
            return;
        }
        let resolved = self
            .interner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .to_query(query);
        self.record(principal, &resolved);
    }

    /// Appends one record to the write-ahead log and commits it (flush
    /// plus, if configured, fsync) immediately — the write-ahead step of
    /// every *single* state-changing entry point.  The batch executors
    /// log through [`log_operations`](Self::log_operations) instead,
    /// which commits once per batch (group commit).
    ///
    /// A commit failure past the writer's retry budget does **not**
    /// panic: the record is dropped (the poisoned writer sheds its
    /// buffer and truncates torn bytes), the service degrades to
    /// read-only serving, and the caller gets
    /// [`ServiceError::DurabilityUnavailable`] to decide with —
    /// mutations refuse, admissions keep serving from memory.
    fn log_now(&mut self, payload: &[u8]) -> Result<(), ServiceError> {
        let durable = self
            .durable
            .as_mut()
            .expect("log_now is only called on durable services");
        let Some(writer) = durable.writer.as_mut() else {
            return Err(ServiceError::DurabilityUnavailable);
        };
        match writer
            .append(payload)
            .and_then(|seq| writer.commit().map(|()| seq))
        {
            Ok(seq) => {
                durable.last_seq = seq;
                Ok(())
            }
            Err(_) => {
                durable.degrade();
                Err(ServiceError::DurabilityUnavailable)
            }
        }
    }

    /// Logs every state-changing operation of a batch up front, with one
    /// commit for the whole batch — the group-commit fast path of
    /// [`run_batch`](Self::run_batch) and
    /// [`run_pipelined`](Self::run_pipelined).  Logging the batch before
    /// executing any of it preserves the write-ahead invariant: the
    /// log's readable prefix is always a prefix of the applied operation
    /// stream (here the whole batch is ahead of all of it).
    ///
    /// Returns `None` when the batch is unrestricted (fully logged, or
    /// the service is non-durable), and `Some(k)` when the log failed
    /// with only the first `k` loggable records of this batch durable —
    /// the service is degraded on return, and the executor must refuse
    /// every mutation past that durable prefix
    /// ([`batch_coverage`](Self::batch_coverage)).  `Some(0)` is also
    /// the already-degraded answer: nothing of the batch is durable.
    fn log_operations(&mut self, ops: &[Operation]) -> Option<usize> {
        let durable = self.durable.as_mut()?;
        if durable.writer.is_none() {
            return Some(0);
        }
        let interner = &self.interner;
        let mut payload = Vec::new();
        let (base_committed, mut failed, logged) = {
            let writer = durable.writer.as_mut().expect("checked above");
            let base = writer.stats().records_committed;
            let mut failed = false;
            let mut logged = false;
            for op in ops {
                payload.clear();
                if encode_loggable(op, interner, &mut payload) {
                    match writer.append(&payload) {
                        Ok(_) => logged = true,
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
            }
            (base, failed, logged)
        };
        if !failed && logged {
            let writer = durable.writer.as_mut().expect("checked above");
            failed = writer.commit().is_err();
        }
        if failed {
            // Group commits are all-or-nothing, so the committed-record
            // delta is exactly how many of this batch's records made it
            // to disk before the failure.  Those operations will replay;
            // everything after must not be acknowledged as applied.
            let durable_now = {
                let writer = durable.writer.as_ref().expect("still present on failure");
                (writer.stats().records_committed - base_committed) as usize
            };
            durable.last_seq += durable_now as u64;
            durable.degrade();
            Some(durable_now)
        } else {
            if let Some(writer) = durable.writer.as_ref() {
                durable.last_seq = writer.next_seq().saturating_sub(1);
            }
            None
        }
    }

    /// Expands [`log_operations`](Self::log_operations)' durable-prefix
    /// answer into per-op coverage: `covered[i]` is true when op `i` may
    /// execute normally, false when it is a mutation whose WAL record is
    /// not durable and must be refused.  `None` means unrestricted.
    fn batch_coverage(
        &self,
        ops: &[Operation],
        durable_prefix: Option<usize>,
    ) -> Option<Vec<bool>> {
        let cut = durable_prefix?;
        let mut covered = vec![true; ops.len()];
        let mut ordinal = 0usize;
        for (i, op) in ops.iter().enumerate() {
            if is_loggable(op, &self.interner) {
                covered[i] = ordinal < cut;
                ordinal += 1;
            }
        }
        Some(covered)
    }

    /// Applies one op of a pre-logged batch under its coverage verdict:
    /// an uncovered mutation answers
    /// [`ServiceError::DurabilityUnavailable`] without touching state
    /// (its record never reached disk), everything else — admissions,
    /// checks, audits, and mutations whose records *are* durable —
    /// executes normally.
    fn apply_covered(&mut self, op: &Operation, covered: bool) -> Response {
        if !covered && op.is_mutation() {
            return Response::Rejected(ServiceError::DurabilityUnavailable);
        }
        self.apply_unlogged(op)
    }

    /// Flushes the label cache if the service runs in
    /// [`InvalidationMode::FlushOnMutation`].  Entries are dropped but the
    /// labeler's counters accumulate across flushes, so the baseline's
    /// re-warming cost stays visible in `labeler().stats()`.
    fn after_mutation(&mut self) {
        self.stats.mutations += 1;
        if self.config.invalidation == InvalidationMode::FlushOnMutation {
            self.labeler.clear_entries();
            self.stats.flushes += 1;
        }
    }

    /// Admits (and commits) one query on behalf of a principal.
    ///
    /// On a degraded durable service the submission is served from
    /// memory (and not logged): admission counters move, and become
    /// durable again with the next successful checkpoint.  A WAL
    /// failure on this very record likewise degrades the service and
    /// serves the decision from memory rather than erroring — the
    /// admission's record was shed with the dead writer, so recovery
    /// stays a prefix of what was acknowledged.
    pub fn submit(
        &mut self,
        principal: PrincipalId,
        query: &ConjunctiveQuery,
    ) -> Result<Decision, ServiceError> {
        if self.durable.is_some() && !self.is_degraded() {
            let mut payload = Vec::new();
            durable::encode_submit(principal, query, &mut payload);
            let _ = self.log_now(&payload);
        }
        self.submit_unlogged(principal, query)
    }

    /// [`submit`](Self::submit) without the WAL hook — the shared
    /// application step, also the replay entry point.
    fn submit_unlogged(
        &mut self,
        principal: PrincipalId,
        query: &ConjunctiveQuery,
    ) -> Result<Decision, ServiceError> {
        self.validate_principal(principal)?;
        self.stats.admissions += 1;
        let packed = self.labeler.label_packed(query);
        let decision = self.store.submit_packed(principal, &packed);
        self.record(principal, query);
        Ok(decision)
    }

    /// Pure check: would this query be admitted right now?
    pub fn check(
        &mut self,
        principal: PrincipalId,
        query: &ConjunctiveQuery,
    ) -> Result<Decision, ServiceError> {
        self.validate_principal(principal)?;
        self.stats.admissions += 1;
        let packed = self.labeler.label_packed(query);
        Ok(self.store.check_packed(principal, &packed))
    }

    /// [`submit`](Self::submit) by pre-interned query id: the label comes
    /// straight out of the id-indexed slot cache — no parsing, no hashing,
    /// no query clone on the wire.
    ///
    /// On a durable service the submission is logged as its resolved
    /// canonical query, so the log replays without depending on the
    /// (volatile) id assignment.
    pub fn submit_interned(
        &mut self,
        principal: PrincipalId,
        query: QueryId,
    ) -> Result<Decision, ServiceError> {
        if self.durable.is_some() && !self.is_degraded() {
            let mut payload = Vec::new();
            if encode_loggable(
                &Operation::SubmitInterned { principal, query },
                &self.interner,
                &mut payload,
            ) {
                // Degraded-submit semantics on failure, as in `submit`.
                let _ = self.log_now(&payload);
            }
        }
        self.submit_interned_unlogged(principal, query)
    }

    /// [`submit_interned`](Self::submit_interned) without the WAL hook —
    /// the shared application step.
    fn submit_interned_unlogged(
        &mut self,
        principal: PrincipalId,
        query: QueryId,
    ) -> Result<Decision, ServiceError> {
        self.validate_principal(principal)?;
        self.validate_query_id(query)?;
        self.stats.admissions += 1;
        let packed = self.labeler.label_packed_interned(query);
        let decision = self.store.submit_packed(principal, &packed);
        self.record_interned(principal, query);
        Ok(decision)
    }

    /// [`check`](Self::check) by pre-interned query id; never commits.
    pub fn check_interned(
        &mut self,
        principal: PrincipalId,
        query: QueryId,
    ) -> Result<Decision, ServiceError> {
        self.validate_principal(principal)?;
        self.validate_query_id(query)?;
        self.stats.admissions += 1;
        let packed = self.labeler.label_packed_interned(query);
        Ok(self.store.check_packed(principal, &packed))
    }

    /// Grants a security view (by name) to a principal.  Refused with
    /// [`ServiceError::DurabilityUnavailable`] while the durable
    /// service serves degraded.
    pub fn grant_view(&mut self, principal: PrincipalId, view: &str) -> Result<(), ServiceError> {
        self.guard_mutation()?;
        if self.durable.is_some() {
            let mut payload = Vec::new();
            durable::encode_grant(principal, view, &mut payload);
            self.log_now(&payload)?;
        }
        into_unit(self.apply_policy_mutation(principal, view, true, None))
    }

    /// Revokes a security view (by name) from a principal.  Refused
    /// with [`ServiceError::DurabilityUnavailable`] while the durable
    /// service serves degraded.
    pub fn revoke_view(&mut self, principal: PrincipalId, view: &str) -> Result<(), ServiceError> {
        self.guard_mutation()?;
        if self.durable.is_some() {
            let mut payload = Vec::new();
            durable::encode_revoke(principal, view, &mut payload);
            self.log_now(&payload)?;
        }
        into_unit(self.apply_policy_mutation(principal, view, false, None))
    }

    /// Replaces a principal's policy wholesale, preserving its
    /// consistency word and counters — the bulk counterpart of a
    /// grant/revoke sequence, logged as a single WAL record on durable
    /// services.
    ///
    /// # Panics
    ///
    /// Panics if the replacement changes the partition count (the
    /// consistency word's partition bits would be meaningless — see
    /// [`ShardedPolicyStore::replace_policy`]), or if the write-ahead
    /// log cannot be written.
    pub fn replace_policy(
        &mut self,
        principal: PrincipalId,
        policy: SecurityPolicy,
    ) -> Result<(), ServiceError> {
        self.validate_principal(principal)?;
        self.guard_mutation()?;
        // A partition-count mismatch panics in the store below without
        // having been logged (the record must not outlive the panic).
        if self.durable.is_some() && policy.len() == self.store.policy(principal).len() {
            let mut payload = Vec::new();
            durable::encode_replace_policy(principal, &policy, &mut payload);
            self.log_now(&payload)?;
        }
        self.replace_policy_unlogged(principal, policy);
        Ok(())
    }

    /// [`replace_policy`](Self::replace_policy) without the validation
    /// and WAL hook — the shared application step.
    fn replace_policy_unlogged(&mut self, principal: PrincipalId, policy: SecurityPolicy) {
        self.store.replace_policy(principal, policy);
        self.after_mutation();
    }

    /// Registers a new security view online.
    ///
    /// In [`InvalidationMode::Incremental`] only the view's relation is
    /// invalidated; rejected registrations (duplicate name, multi-atom
    /// definition, the relation's 32-view packed budget) leave every cache,
    /// epoch and policy untouched.
    pub fn add_security_view(
        &mut self,
        name: &str,
        query: ConjunctiveQuery,
    ) -> Result<fdc_core::SecurityViewId, ServiceError> {
        self.guard_mutation()?;
        if self.durable.is_some() {
            let mut payload = Vec::new();
            durable::encode_add_view(name, &query, &mut payload);
            self.log_now(&payload)?;
        }
        self.add_security_view_unlogged(name, query)
    }

    /// [`add_security_view`](Self::add_security_view) without the WAL
    /// hook — the shared application step.
    fn add_security_view_unlogged(
        &mut self,
        name: &str,
        query: ConjunctiveQuery,
    ) -> Result<fdc_core::SecurityViewId, ServiceError> {
        let id = self.labeler.add_view(name, query)?;
        self.after_mutation();
        Ok(id)
    }

    /// Audits a principal: its requested permissions (the union of its
    /// policy's permitted views, live) against its observed workload.
    pub fn audit_app(&mut self, principal: PrincipalId) -> Result<AuditReport, ServiceError> {
        self.validate_principal(principal)?;
        if !self.history_enabled() {
            return Err(ServiceError::AuditingDisabled);
        }
        self.stats.audits += 1;
        let requested = requested_views(self.store.policy(principal), self.registry());
        let workload: Vec<ConjunctiveQuery> =
            self.history[principal.index()].iter().cloned().collect();
        Ok(audit_app(&self.labeler, requested, &workload))
    }

    /// Opens (or creates) a durable service homed in `dir`, recovering
    /// whatever state the directory holds: the newest valid checkpoint
    /// seeds the state, and the WAL records past it replay on top, in
    /// sequence order, through the same application paths the live
    /// service uses.  A torn tail (the crash landed mid-record) is
    /// truncated; a fresh directory starts from `views` with an empty
    /// log.
    ///
    /// Every state-changing operation the returned service applies is
    /// appended to the log *before* it applies (write-ahead), so a crash
    /// at any instant loses at most the operations whose log records had
    /// not reached disk — and never leaves half-applied state behind.
    /// [`ServiceConfig::durability`] tunes the fsync/batching trade-off.
    ///
    /// `views` is only read when the directory has no checkpoint (first
    /// boot, or a crash before the first [`checkpoint`](Self::checkpoint));
    /// callers must pass the same initial registry on every open, since a
    /// zero-checkpoint recovery replays the log against it.  Once a
    /// checkpoint exists, the registry (and the interner, policies,
    /// per-principal state and audit histories) come from disk, and the
    /// checkpoint's shard count overrides `config.num_shards` — the
    /// round-robin principal placement is part of the on-disk layout.
    ///
    /// The audit history is bounded by the *current*
    /// [`ServiceConfig::history_cap`]: a recovered history longer than
    /// the cap drops its oldest entries, and a zero cap drops it
    /// entirely.  [`ServiceStats`] counters restart at zero — they are
    /// observability counters, not durable state (checks and audits are
    /// never logged).
    pub fn open_durable(
        views: SecurityViews,
        config: ServiceConfig,
        dir: &Path,
    ) -> io::Result<(Self, RecoveryReport)> {
        Self::open_durable_in(views, config, dir, Arc::new(StdVfs), Arc::new(SystemClock))
    }

    /// [`open_durable`](Self::open_durable) through an explicit
    /// filesystem and clock — the entry point of the fault-injection
    /// suites, which open services over an
    /// [`fdc_durability::FaultVfs`] and an instant clock.  Production
    /// callers use [`open_durable`](Self::open_durable), which pins
    /// [`StdVfs`] and the real clock.
    pub fn open_durable_in(
        views: SecurityViews,
        config: ServiceConfig,
        dir: &Path,
        vfs: Arc<dyn Vfs>,
        clock: Arc<dyn Clock>,
    ) -> io::Result<(Self, RecoveryReport)> {
        vfs.create_dir_all(dir)?;
        // A crash between a checkpoint's temp write and its rename
        // strands a `ckpt-*.tmp` orphan; sweep them before reading so
        // they can never accumulate (the rename-failure regression test
        // in `fdc-durability` covers the stranding itself).
        let temps_swept = sweep_stale_temps_in(vfs.as_ref(), dir)? as u64;
        let (mut service, checkpoint_seq) = match latest_checkpoint_in(vfs.as_ref(), dir)? {
            Some((seq, payload)) => (
                Self::decode_state(&payload, config).map_err(invalid_data)?,
                seq,
            ),
            None => (DisclosureService::new(views, config), 0),
        };
        let contents = read_log_in(vfs.as_ref(), dir)?;
        let mut replayed = 0u64;
        let catalog = service.registry().catalog().clone();
        for record in &contents.records {
            // Records at or below the checkpoint are already reflected in
            // its image (a crash between checkpoint write and segment
            // pruning leaves them behind); skip, don't double-apply.
            if record.seq <= checkpoint_seq {
                continue;
            }
            let op = durable::decode_wal_op(&catalog, &record.payload).map_err(invalid_data)?;
            service.replay(op);
            replayed += 1;
        }
        let writer = WalWriter::resume_in(
            Arc::clone(&vfs),
            Arc::clone(&clock),
            dir,
            config.durability,
            &contents.tail,
            checkpoint_seq + 1,
        )?;
        let last_seq = writer.next_seq() - 1;
        let report = RecoveryReport {
            checkpoint_seq,
            records_replayed: replayed,
            last_seq,
            discarded_bytes: contents.discarded_bytes,
            discarded_records: contents.discarded_records,
            temps_swept,
        };
        service.durable = Some(DurableState {
            writer: Some(writer),
            dir: dir.to_path_buf(),
            vfs,
            clock,
            wal_base: WalStats::default(),
            mode: ServiceMode::Healthy,
            mode_transitions: 0,
            checkpoints: 0,
            checkpoint_failures: 0,
            last_checkpoint_seq: checkpoint_seq,
            last_seq,
            report,
        });
        Ok((service, report))
    }

    /// True when this service was opened with
    /// [`open_durable`](Self::open_durable) and logs its mutations.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Writes a checkpoint of the full service state — registry (with
    /// epochs), interner, sharded policy store, audit histories — at the
    /// current log position, then prunes: only the newest two checkpoint
    /// files are kept (the predecessor survives as a fallback should the
    /// newest be damaged in place), and WAL segments wholly covered by
    /// the *oldest retained* checkpoint are deleted — every checkpoint
    /// still on disk keeps the log records past it, so falling back to
    /// the older image loses nothing.  Returns the checkpoint's sequence
    /// number.
    ///
    /// The image is written to a temporary file and atomically renamed
    /// into place, so a crash mid-checkpoint leaves the previous
    /// checkpoint (and the full log) intact.  Recovery from the image is
    /// a *bulkload*: per-principal state is restored as raw words, with
    /// no per-principal policy compilation.
    ///
    /// On a **degraded** service the checkpoint is the recovery path:
    /// the image is taken at the frozen durable horizon (which, by the
    /// read-only contract, covers every acknowledged mutation — plus
    /// the degraded window's in-memory admissions, which become durable
    /// with it).  If the image lands, the stale WAL segments are
    /// removed, a fresh segment starts past the image, and the service
    /// is promoted back to [`ServiceMode::Healthy`]; if storage is
    /// still failing, the attempt counts in
    /// [`DurabilityHealth::checkpoint_failures`] and the service stays
    /// degraded for the next attempt (see
    /// [`BackgroundCheckpointer`](crate::BackgroundCheckpointer)).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, and on services not opened with
    /// [`open_durable`](Self::open_durable).
    pub fn checkpoint(&mut self) -> io::Result<u64> {
        let pending = self.begin_checkpoint()?;
        let payload = pending.encode();
        self.complete_checkpoint(&pending, &payload)
    }

    /// First half of a [`checkpoint`](Self::checkpoint): commits the WAL,
    /// fixes the sequence number the image will cover, and freezes the
    /// state to serialize — all under the service lock, all cheap
    /// (structural clones, no serialization except the append-only
    /// interner).  The returned [`PendingCheckpoint`] owns everything the
    /// expensive [`encode`](PendingCheckpoint::encode) step needs, so the
    /// caller can release the service lock — or hand the encode to the
    /// worker pool, as [`BackgroundCheckpointer`](crate::BackgroundCheckpointer)
    /// does — and keep admitting mutations while the image is serialized;
    /// [`complete_checkpoint`](Self::complete_checkpoint) finishes the
    /// job.  Mutations admitted between `begin` and `complete` are covered
    /// by their WAL records past the pending sequence number, which the
    /// completion never prunes.
    ///
    /// # Errors
    ///
    /// Fails on services not opened with
    /// [`open_durable`](Self::open_durable).
    pub fn begin_checkpoint(&mut self) -> io::Result<PendingCheckpoint> {
        let durable = self.durable.as_mut().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint requires a service opened with open_durable",
            )
        })?;
        if let Some(writer) = durable.writer.as_mut() {
            // The buffer is normally empty here (every entry point
            // commits); a failure means storage just died under a
            // straggler batch — degrade and checkpoint anyway, the
            // image covers everything acknowledged.
            if writer.commit().is_err() {
                durable.degrade();
            }
        }
        let seq = match durable.writer.as_ref() {
            Some(writer) => writer.next_seq() - 1,
            None => durable.last_seq,
        };
        let healthy = durable.writer.is_some();
        let mut interner = Vec::new();
        self.interner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .encode_into(&mut interner);
        Ok(PendingCheckpoint {
            seq,
            healthy,
            views: self.labeler.security_views().clone(),
            interner,
            store: self.store.clone(),
            history: self.history.clone(),
        })
    }

    /// Second half of a [`checkpoint`](Self::checkpoint): writes the
    /// encoded image for `pending` and retires the log debt behind it
    /// (rotate + prune on a healthy service, segment replacement and
    /// Degraded → Healthy promotion on a degraded one).  If the service
    /// was healthy at [`begin_checkpoint`](Self::begin_checkpoint) but
    /// degraded while the payload was encoded, the image is written and
    /// counted but **no** segment is touched: the surviving log holds
    /// acknowledged records past the image that promotion-style pruning
    /// would destroy.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors writing the image, and on services not opened
    /// with [`open_durable`](Self::open_durable).
    pub fn complete_checkpoint(
        &mut self,
        pending: &PendingCheckpoint,
        payload: &[u8],
    ) -> io::Result<u64> {
        let seq = pending.seq;
        let fsync = self.config.durability.fsync;
        let durability = self.config.durability;
        let durable = self.durable.as_mut().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "checkpoint requires a service opened with open_durable",
            )
        })?;
        let dir = durable.dir.clone();
        let vfs = Arc::clone(&durable.vfs);
        match write_checkpoint_in(vfs.as_ref(), &dir, seq, payload, fsync) {
            Ok(_) => {
                durable.checkpoints += 1;
                durable.last_checkpoint_seq = seq;
            }
            Err(err) => {
                durable.checkpoint_failures += 1;
                return Err(err);
            }
        }
        if durable.writer.is_some() {
            // Healthy path.  Rotate so the covered records' segment
            // becomes prunable: the fresh segment starts exactly at the
            // replay point (seq + 1).  A rotation failure means storage
            // is going — the image landed, so degrade and report the
            // checkpoint as the success it was.
            let writer = durable.writer.as_mut().expect("healthy path");
            if writer.rotate().is_err() {
                durable.degrade();
                return Ok(seq);
            }
            prune_checkpoints_in(vfs.as_ref(), &dir, CHECKPOINTS_KEPT)?;
            let horizon = checkpoint_seqs_in(vfs.as_ref(), &dir)?
                .first()
                .copied()
                .unwrap_or(seq);
            prune_segments_in(vfs.as_ref(), &dir, horizon)?;
        } else if pending.healthy {
            // The service was healthy at `begin` but degraded while the
            // payload was encoded off-lock: the old segments hold
            // acknowledged records *past* `seq` that the image does not
            // cover, so the promotion path's delete-and-replace below
            // would destroy durable state.  The image landed (and
            // counted); promotion waits for a checkpoint begun on the
            // frozen degraded horizon.
        } else {
            // Degraded promotion.  The image at `seq` shadows every
            // record the old segments hold — including any torn bytes a
            // failed truncation left past the durable horizon — so
            // remove them *before* starting the fresh segment: recovery
            // must never stitch a stale tail across the new log.  Every
            // step is fallible on still-sick storage; any failure
            // leaves the service degraded (with a valid checkpoint) and
            // the next attempt retries.
            let clock = Arc::clone(&durable.clock);
            let fresh = (|| -> io::Result<WalWriter> {
                for name in vfs.list(&dir)? {
                    if name.starts_with("wal-") && name.ends_with(".log") {
                        vfs.remove_file(&dir.join(&name))?;
                    }
                }
                WalWriter::create_in(Arc::clone(&vfs), clock, &dir, durability, seq + 1)
            })();
            if let Ok(writer) = fresh {
                durable.writer = Some(writer);
                durable.last_seq = seq;
                durable.mode = ServiceMode::Healthy;
                durable.mode_transitions += 1;
                // Best-effort: stale checkpoints never block promotion.
                let _ = prune_checkpoints_in(vfs.as_ref(), &dir, CHECKPOINTS_KEPT);
            }
        }
        Ok(seq)
    }

    /// Shuts the service down cleanly: commits any buffered WAL records
    /// and drops the log handle.  A no-op (beyond dropping) on
    /// non-durable services.  Skipping `close` is *safe* — that is the
    /// whole point of the WAL — it just leaves the un-committed batch
    /// tail to be dropped as a torn tail on the next open.
    pub fn close(mut self) -> io::Result<()> {
        if let Some(mut durable) = self.durable.take() {
            if let Some(writer) = durable.writer.as_mut() {
                writer.commit()?;
            }
        }
        Ok(())
    }

    /// Applies one decoded WAL record during recovery, through the same
    /// unlogged application paths the live executors use.  Rejections
    /// (unknown principal, duplicate view name, …) are deliberately
    /// ignored: the live service logged the operation before validating
    /// it, and a rejected operation changed no state then either.
    fn replay(&mut self, op: WalOp) {
        debug_assert!(self.durable.is_none(), "replay must never re-log");
        match op {
            WalOp::RegisterPrincipal { policy } => {
                self.register_principal_unlogged(policy);
            }
            WalOp::Submit { principal, query } => {
                let _ = self.submit_unlogged(principal, &query);
            }
            WalOp::GrantView { principal, view } => {
                self.apply_mutation(&Operation::GrantView { principal, view }, None);
            }
            WalOp::RevokeView { principal, view } => {
                self.apply_mutation(&Operation::RevokeView { principal, view }, None);
            }
            WalOp::AddSecurityView { name, query } => {
                self.apply_mutation(&Operation::AddSecurityView { name, query }, None);
            }
            WalOp::ReplacePolicy { principal, policy } => {
                // Logged replacements were validated before logging; the
                // guards keep a hand-damaged log from panicking recovery.
                if principal.index() < self.store.len()
                    && policy.len() == self.store.policy(principal).len()
                {
                    self.replace_policy_unlogged(principal, policy);
                }
            }
        }
    }

    /// Rebuilds a service from a checkpoint payload.  Every length,
    /// index and cross-structure invariant is validated — a corrupt or
    /// truncated payload yields an error, never a panic or a
    /// half-consistent service.
    fn decode_state(payload: &[u8], config: ServiceConfig) -> Result<Self, CodecError> {
        let mut cursor = Cursor::new(payload);
        let views = SecurityViews::decode_from(&mut cursor)?;
        let interner = QueryInterner::decode_from(&mut cursor)?;
        let mut store = ShardedPolicyStore::decode_from(&mut cursor)?;
        let at = cursor.pos();
        let num_principals = cursor.count(1)?;
        if num_principals != store.len() {
            return Err(CodecError::invalid(
                at,
                "history length differs from the principal count",
            ));
        }
        let mut history = Vec::with_capacity(num_principals);
        for _ in 0..num_principals {
            let entries = cursor.count(1)?;
            let mut log = VecDeque::with_capacity(entries);
            for _ in 0..entries {
                let at = cursor.pos();
                let query = fdc_cq::wire::decode_query(&mut cursor)?;
                durable::validate_query(views.catalog(), &query, at)?;
                log.push_back(query);
            }
            history.push(log);
        }
        cursor.expect_end()?;
        // The packed-budget invariant `new` asserts, as a decode error.
        for r in 0..views.catalog().len() {
            let relation = RelId(r as u32);
            if views.views_for_relation(relation).len() > MAX_PACKED_VIEWS_PER_RELATION {
                return Err(CodecError::invalid(
                    0,
                    format!(
                        "relation `{}` exceeds the packed view budget",
                        views.catalog().name(relation)
                    ),
                ));
            }
        }
        // The recovered history obeys the *current* cap.
        if config.history_cap == 0 {
            for log in &mut history {
                log.clear();
            }
        } else {
            for log in &mut history {
                while log.len() > config.history_cap {
                    log.pop_front();
                }
            }
        }
        // The shard count is part of the on-disk layout (round-robin
        // placement): the checkpoint's count wins over the config's.
        // The parallel threshold and worker width are pure tuning: the
        // config's win.
        let num_shards = store.num_shards();
        let workers = if config.workers == 0 {
            available_threads()
        } else {
            config.workers
        };
        store.set_parallel_threshold(config.parallel_threshold);
        let labeler = CachedLabeler::with_interner(views, interner, DEFAULT_CACHE_CAPACITY);
        let interner = labeler.interner();
        Ok(DisclosureService {
            labeler,
            interner,
            store,
            history,
            config: ServiceConfig {
                num_shards,
                workers,
                ..config
            },
            stats: ServiceStats::default(),
            durable: None,
            parallel: ParallelPlane::default(),
        })
    }

    /// Applies one operation sequentially.
    ///
    /// On a degraded durable service, mutations answer
    /// [`Response::Rejected`] with
    /// [`ServiceError::DurabilityUnavailable`]; admissions, checks and
    /// audits keep serving from memory.  A WAL failure on the
    /// operation's own record degrades the service mid-call and the
    /// same contract applies to it.
    pub fn apply(&mut self, op: &Operation) -> Response {
        if self.durable.is_some() {
            let mut covered = true;
            if self.is_degraded() {
                covered = false;
            } else {
                let mut payload = Vec::new();
                if encode_loggable(op, &self.interner, &mut payload) {
                    covered = self.log_now(&payload).is_ok();
                }
            }
            return self.apply_covered(op, covered);
        }
        self.apply_unlogged(op)
    }

    /// [`apply`](Self::apply) without the WAL hook: admissions route to
    /// their unlogged twins, everything else to the unified
    /// [`apply_mutation`](Self::apply_mutation).  The batch executors
    /// call this after pre-logging the whole batch.
    fn apply_unlogged(&mut self, op: &Operation) -> Response {
        match op {
            Operation::Submit { principal, query } => {
                match self.submit_unlogged(*principal, query) {
                    Ok(decision) => Response::Decision(decision),
                    Err(err) => Response::Rejected(err),
                }
            }
            Operation::Check { principal, query } => match self.check(*principal, query) {
                Ok(decision) => Response::Decision(decision),
                Err(err) => Response::Rejected(err),
            },
            Operation::SubmitInterned { principal, query } => {
                match self.submit_interned_unlogged(*principal, *query) {
                    Ok(decision) => Response::Decision(decision),
                    Err(err) => Response::Rejected(err),
                }
            }
            Operation::CheckInterned { principal, query } => {
                match self.check_interned(*principal, *query) {
                    Ok(decision) => Response::Decision(decision),
                    Err(err) => Response::Rejected(err),
                }
            }
            _ => self.apply_mutation(op, None),
        }
    }

    /// Applies one non-admission operation (policy mutation,
    /// view-universe mutation, audit) — the single application entry
    /// point shared by sequential [`apply`](Self::apply), both batch
    /// executors' segment passes and WAL replay.  In-segment callers
    /// pass the serving snapshot so view-name resolution and audit
    /// relabeling read the frozen registry; everyone else passes `None`
    /// and reads the live one.
    ///
    /// # Panics
    ///
    /// Panics on admission operations — those carry per-executor
    /// labeling strategies and never route through here.
    fn apply_mutation(&mut self, op: &Operation, serving: Option<&ServiceSnapshot>) -> Response {
        match op {
            Operation::GrantView { principal, view } => {
                self.apply_policy_mutation(*principal, view, true, serving)
            }
            Operation::RevokeView { principal, view } => {
                self.apply_policy_mutation(*principal, view, false, serving)
            }
            Operation::AddSecurityView { name, query } => {
                match self.add_security_view_unlogged(name, query.clone()) {
                    Ok(id) => Response::ViewAdded(id),
                    Err(err) => Response::Rejected(err),
                }
            }
            Operation::AuditApp { principal } => self.apply_audit(*principal, serving),
            _ => unreachable!("apply_mutation requires a non-admission operation"),
        }
    }

    /// Serves a batch of operations, returning one response per operation
    /// in request order.
    ///
    /// This is the service's request loop: maximal runs of admissions
    /// (`Submit` / `Check`) execute on the persistent worker pool —
    /// labeling fans out in stealable chunks over workers sharing the
    /// epoch-aware cache, decisions fan out one pool task per policy shard
    /// — and mutations / audits apply sequentially at their position,
    /// splitting the runs.
    /// The responses (and all per-principal state) equal strictly
    /// sequential [`apply`](Self::apply) processing; the test suite and the
    /// `incremental_relabel` property test assert this.
    pub fn run_batch(&mut self, ops: &[Operation]) -> Vec<Response> {
        let durable_prefix = self.log_operations(ops);
        let coverage = self.batch_coverage(ops, durable_prefix);
        let mut responses: Vec<Option<Response>> = vec![None; ops.len()];
        // (op index, principal, query, commit) of the pending admission run.
        let mut run: Vec<(usize, PrincipalId, AdmissionQuery<'_>, bool)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Operation::Submit { principal, query } => {
                    run.push((i, *principal, AdmissionQuery::Plain(query), true));
                }
                Operation::Check { principal, query } => {
                    run.push((i, *principal, AdmissionQuery::Plain(query), false));
                }
                Operation::SubmitInterned { principal, query } => {
                    run.push((i, *principal, AdmissionQuery::Interned(*query), true));
                }
                Operation::CheckInterned { principal, query } => {
                    run.push((i, *principal, AdmissionQuery::Interned(*query), false));
                }
                _ => {
                    self.flush_run(&mut run, &mut responses);
                    let covered = coverage.as_ref().is_none_or(|c| c[i]);
                    responses[i] = Some(self.apply_covered(op, covered));
                }
            }
        }
        self.flush_run(&mut run, &mut responses);
        responses
            .into_iter()
            .map(|r| r.expect("every operation answered"))
            .collect()
    }

    /// Executes one pending admission run on the parallel path (sequentially
    /// below [`ServiceConfig::parallel_threshold`]).
    fn flush_run(
        &mut self,
        run: &mut Vec<(usize, PrincipalId, AdmissionQuery<'_>, bool)>,
        responses: &mut [Option<Response>],
    ) {
        if run.is_empty() {
            return;
        }
        // Unknown principals and foreign query ids answer immediately and
        // drop out of the batch.
        let mut valid: Vec<(usize, PrincipalId, AdmissionQuery<'_>, bool)> =
            Vec::with_capacity(run.len());
        for &(i, principal, query, commit) in run.iter() {
            let checked = self
                .validate_principal(principal)
                .and_then(|()| match query {
                    AdmissionQuery::Plain(_) => Ok(()),
                    AdmissionQuery::Interned(id) => self.validate_query_id(id),
                });
            match checked {
                Ok(()) => valid.push((i, principal, query, commit)),
                Err(err) => responses[i] = Some(Response::Rejected(err)),
            }
        }
        self.stats.admissions += valid.len() as u64;
        // Batch-level dedup on canonical identity: admissions that resolve
        // to the same QueryId label once, and the label fans out to every
        // duplicate slot.  Interned admissions carry their identity; plain
        // ones get a read-only interner lookup (an unknown shape has no
        // cheap identity and simply is not deduped).  Duplicates are
        // credited on the live labeler's `batch_dedup_hits` counter.
        let mut slot_of: Vec<usize> = Vec::with_capacity(valid.len());
        let mut first_slot: HashMap<QueryId, usize> = HashMap::new();
        let mut unique: Vec<AdmissionQuery<'_>> = Vec::with_capacity(valid.len());
        for &(_, _, query, _) in valid.iter() {
            let identity = match query {
                AdmissionQuery::Interned(id) => Some(id),
                AdmissionQuery::Plain(q) => self.labeler.batch_identity(q),
            };
            match identity.and_then(|id| first_slot.get(&id).copied()) {
                Some(slot) => {
                    slot_of.push(slot);
                    self.labeler.note_batch_dedup_hit();
                }
                None => {
                    let slot = unique.len();
                    if let Some(id) = identity {
                        first_slot.insert(id, slot);
                    }
                    slot_of.push(slot);
                    unique.push(query);
                }
            }
        }
        // Stage 1: label every *distinct* query through the shared cache —
        // interned admissions index the slot cache directly, plain ones
        // intern on first sight.  Runs at or above the parallel threshold
        // (counted after dedup, which is the labeling work actually left)
        // hand off to the persistent worker pool against a per-run labeler
        // snapshot (no run contains a mutation, so the snapshot is the
        // live labeler at every position of the run); shorter runs label
        // inline.
        let pooled =
            self.config.workers > 1 && unique.len() >= self.config.parallel_threshold.max(2);
        let unique_packed: Vec<Vec<PackedLabel>> = if pooled {
            let staged: Vec<StagedQuery> = unique
                .iter()
                .map(|&query| StagedQuery::from_admission(query))
                .collect();
            self.pooled_label_run(staged)
        } else {
            unique
                .iter()
                .map(|&query| match query {
                    AdmissionQuery::Plain(q) => self.labeler.label_packed(q),
                    AdmissionQuery::Interned(id) => self.labeler.label_packed_interned(id),
                })
                .collect()
        };
        let packed: Vec<Vec<PackedLabel>> = slot_of
            .iter()
            .map(|&slot| unique_packed[slot].clone())
            .collect();
        // Stage 2: decide the mixed submit/check batch, sharded by
        // principal on the same pool.
        let batch: Vec<(PrincipalId, &[PackedLabel], bool)> = valid
            .iter()
            .zip(&packed)
            .map(|(&(_, principal, _, commit), label)| (principal, label.as_slice(), commit))
            .collect();
        let pool = Arc::clone(self.worker_pool());
        let decisions = self.store.decide_batch_on(&pool, &batch);
        for (&(i, principal, query, commit), decision) in valid.iter().zip(decisions) {
            if commit {
                match query {
                    AdmissionQuery::Plain(q) => self.record(principal, q),
                    AdmissionQuery::Interned(id) => self.record_interned(principal, id),
                }
            }
            responses[i] = Some(Response::Decision(decision));
        }
        run.clear();
    }

    /// Labels one admission run on the worker pool: freeze a labeler
    /// snapshot, chunk the staged queries across the workers (more chunks
    /// than workers, so stealing levels skew), pin each chunk's task to a
    /// fresh epoch, and drain the snapshot's cache work back into the
    /// live labeler once the batch completes — at which point every task
    /// of the epoch has unpinned, so the reclamation is immediate.
    fn pooled_label_run(&mut self, staged: Vec<StagedQuery>) -> Vec<Vec<PackedLabel>> {
        let pool = Arc::clone(self.worker_pool());
        // One private overlay lane per pool worker (plus the coordinator's
        // lane 0): workers write their cache work contention-free and the
        // retire below merges every lane back into the striped tables.
        let snapshot = Arc::new(self.labeler.snapshot_with_lanes(pool.workers() + 1));
        let epoch = pool.advance_epoch();
        let chunk_len = staged
            .len()
            .div_ceil(pool.workers() * CHUNKS_PER_WORKER)
            .max(1);
        let inputs = chunk_owned(staged, chunk_len);
        let shared = Arc::clone(&snapshot);
        let results = pool.run(inputs, move |chunk, ctx| {
            let _pin = ctx.pin(epoch);
            let lane = shared.lane_for(ctx);
            chunk
                .into_iter()
                .map(|query| match query {
                    StagedQuery::Plain(q) => shared.label_packed_in(lane, &q),
                    StagedQuery::Interned(id) => shared.label_packed_interned_in(lane, id),
                })
                .collect::<Vec<_>>()
        });
        self.labeler.retire_snapshot(&snapshot);
        self.parallel.segments_labeled += 1;
        self.parallel.snapshots_reclaimed += 1;
        results.into_iter().flatten().collect()
    }

    /// Freezes the service's read plane into a [`ServiceSnapshot`]: the
    /// registry at its current epoch vector, a read-only handle onto the
    /// striped label caches, and one copy-on-write policy-arena handle per
    /// shard.  See the [`snapshot`](crate::snapshot) module for the
    /// build → serve → retire lifecycle.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot::new(self.labeler.snapshot(), self.store.arena_handles())
    }

    /// [`snapshot`](Self::snapshot) with one private overlay lane per pool
    /// worker (plus the coordinator's lane 0) — the form the pipelined
    /// executor stages segments through, so concurrent workers never
    /// contend on a shared overlay stripe lock.
    fn serving_snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot::new(
            self.labeler.snapshot_with_lanes(self.config.workers + 1),
            self.store.arena_handles(),
        )
    }

    /// Serves a batch of operations with the **epoch-snapshot pipelined
    /// executor**, returning one response per operation in request order —
    /// extensionally equal to [`run_batch`](Self::run_batch) and to
    /// sequential [`apply`](Self::apply) processing (property-tested), but
    /// with the labeling stage decoupled from the mutation stream.
    ///
    /// [`run_batch`](Self::run_batch) splits its parallel admission runs at
    /// **every** mutation, so at realistic churn ratios the runs shrink
    /// until the fan-out (or even the sequential fallback) dominates.  This
    /// executor instead partitions the stream only at *label-affecting*
    /// boundaries — `AddSecurityView` in
    /// [`InvalidationMode::Incremental`] (grants and revokes never change a
    /// label), every mutation in
    /// [`InvalidationMode::FlushOnMutation`] — and pipelines the segments:
    ///
    /// * each segment's admissions are labeled **concurrently** on the
    ///   persistent [`WorkerPool`] against the *previous*
    ///   [`ServiceSnapshot`] (which is exactly the registry state at every
    ///   position of the segment), while the main thread still walks the
    ///   previous segment's decisions, policy mutations and audits in
    ///   stream order;
    /// * decisions, grants, revokes, history recording and audits apply to
    ///   the live store **at their stream position**; decision runs fan out
    ///   per policy shard and split at a policy mutation or audit only when
    ///   the *touched principal* has a decision pending — decisions for
    ///   other principals read none of the mutated state, so they commute
    ///   across it and the run keeps accumulating;
    /// * snapshots this run has stopped labeling through are reclaimed by
    ///   **epoch**: each labeling batch pins the pool epoch it reads under,
    ///   and once every worker has published past a snapshot's epoch its
    ///   cache work is drained back into the shared striped tables
    ///   (`CachedLabeler::retire_snapshot`), so warm state survives epochs
    ///   without the coordinator blocking at the boundary.  On the
    ///   single-worker path (and on audit-free streams generally) the
    ///   cumulative [`CacheStats`](fdc_core::CacheStats) match the batch
    ///   executor's exactly; with multiple workers the counters are racy in
    ///   the same way `run_batch`'s are, and cache work an audit performs
    ///   through an already-reclaimed snapshot is discarded with it.
    ///
    /// Audits and grant/revoke name resolution use the serving snapshot's
    /// *frozen* registry, which equals the live registry at their stream
    /// position (the only registry mutations are the boundaries
    /// themselves).  Interned-id validity is judged against the shared
    /// interner, which only grows: every id obtained through
    /// [`intern`](Self::intern) / [`interner`](Self::interner) — the
    /// supported workflow — validates exactly as under sequential
    /// [`apply`](Self::apply).  The one under-specified corner is an
    /// interned op referencing an id that is first *minted by a plain
    /// admission inside the same batch*: sequential processing judges it at
    /// its stream position, `run_batch` rejects it if the mint happens in
    /// the same admission run, and the threaded pipeline may resolve it
    /// either way depending on worker-chunk timing.  No supported producer
    /// emits such streams (generators intern through the service before
    /// constructing operations).
    pub fn run_pipelined(&mut self, ops: &[Operation]) -> Vec<Response> {
        if ops.is_empty() {
            return Vec::new();
        }
        let durable_prefix = self.log_operations(ops);
        let coverage = self.batch_coverage(ops, durable_prefix);
        let covered_at =
            |coverage: &Option<Vec<bool>>, i: usize| coverage.as_ref().is_none_or(|c| c[i]);
        let segments = self.segment_ops(ops);
        let workers = self.config.workers;
        let threshold = self.config.parallel_threshold;
        let num_principals = self.store.len();
        let mut responses: Vec<Option<Response>> = vec![None; ops.len()];
        if workers <= 1 {
            // Degenerate single-worker pipeline: same segmentation, but no
            // snapshot, no worker thread and no label staging — which a
            // single-core host could only pay for, never profit from.
            // Labeling fuses straight into the pass (each admission labels
            // through the live labeler at its stream position, which only
            // boundaries mutate), so this path does strictly less work per
            // op than `run_batch` while keeping identical responses.
            for segment in &segments {
                self.pass_segment(
                    ops,
                    segment.range.clone(),
                    None,
                    None,
                    coverage.as_deref(),
                    &mut responses,
                );
                if let Some(b) = segment.boundary {
                    let covered = covered_at(&coverage, b);
                    responses[b] = Some(self.apply_covered(&ops[b], covered));
                }
            }
            return responses
                .into_iter()
                .map(|r| r.expect("every operation answered"))
                .collect();
        }
        let pool = Arc::clone(self.worker_pool());
        // Stages one segment's admissions onto the pool against a frozen
        // snapshot: clone the admissions out of the stream (owned tasks —
        // interned ids are 8-byte copies, the hot serving path), chunk
        // them across the workers with more chunks than workers so
        // stealing levels skewed segments, and pin every chunk's task to
        // a fresh epoch so the coordinator can tell when the snapshot's
        // last reader is gone.  Segments below the parallel threshold
        // stage as a single chunk, which the pool runs inline.
        let spawn_segment = |pool: &Arc<WorkerPool>,
                             snap: &Arc<ServiceSnapshot>,
                             range: std::ops::Range<usize>|
         -> (u64, PendingBatch<Vec<LabeledAdmission>>) {
            let epoch = pool.advance_epoch();
            let staged = stage_admissions(&ops[range.clone()], range.start);
            let chunk_len = if staged.len() < threshold {
                staged.len().max(1)
            } else {
                staged
                    .len()
                    .div_ceil(pool.workers() * CHUNKS_PER_WORKER)
                    .max(1)
            };
            let inputs = chunk_owned(staged, chunk_len);
            let snap = Arc::clone(snap);
            let pending = pool.submit(inputs, move |chunk, ctx| {
                let _pin = ctx.pin(epoch);
                let lane = snap.lane_for(ctx);
                chunk
                    .into_iter()
                    .map(|admission| label_staged(&snap, lane, admission, num_principals))
                    .collect::<Vec<_>>()
            });
            (epoch, pending)
        };
        // Serving snapshots this run has stopped labeling through, oldest
        // first, awaiting reclamation: each is drained back into the live
        // labeler once every pool worker has published past its epoch
        // (replacing the eager retire-after-join of the scoped-thread
        // executor), with an unconditional drain at end of run — every
        // batch has been waited on by then, so no worker still reads one.
        let mut retired: Vec<(u64, Arc<ServiceSnapshot>)> = Vec::new();
        let mut snap = Arc::new(self.serving_snapshot());
        let mut inflight = Some(spawn_segment(&pool, &snap, segments[0].range.clone()));
        for s in 0..segments.len() {
            let (epoch, pending) = inflight.take().expect("one labeling batch per segment");
            let labels: Vec<LabeledAdmission> = pending.wait().into_iter().flatten().collect();
            // This segment's tasks have all unpinned `epoch`; queue its
            // snapshot for reclamation and drain whichever retired
            // snapshots the workers have provably moved past.
            retired.push((epoch, Arc::clone(&snap)));
            self.reclaim_retired(&pool, &mut retired, false);
            let boundary = segments[s].boundary;
            // A registry-only boundary (AddSecurityView) can apply
            // early: nothing in the pass below reads the live registry
            // — labels come from the snapshot, audits and view-name
            // resolution use the snapshot's frozen registry, and the
            // policy store does not depend on the registry.  Applying
            // it now lets the next segment's labeling (which must see
            // the new view) overlap this segment's pass.
            let pre_applied = boundary
                .filter(|&b| matches!(ops[b], Operation::AddSecurityView { .. }))
                .map(|b| self.apply_covered(&ops[b], covered_at(&coverage, b)));
            let serving = Arc::clone(&snap);
            let overlap = pre_applied.is_some() || boundary.is_none();
            if overlap {
                if let Some(next) = segments.get(s + 1) {
                    snap = Arc::new(self.serving_snapshot());
                    inflight = Some(spawn_segment(&pool, &snap, next.range.clone()));
                }
            }
            self.pass_segment(
                ops,
                segments[s].range.clone(),
                Some(&serving),
                Some(labels),
                coverage.as_deref(),
                &mut responses,
            );
            if let Some(b) = boundary {
                // Policy-mutating boundaries (grants/revokes in
                // flush-on-mutation mode) must apply *after* the pass —
                // the pipeline stalls for one snapshot build here.
                let response = pre_applied
                    .unwrap_or_else(|| self.apply_covered(&ops[b], covered_at(&coverage, b)));
                responses[b] = Some(response);
                if !overlap {
                    if let Some(next) = segments.get(s + 1) {
                        snap = Arc::new(self.serving_snapshot());
                        inflight = Some(spawn_segment(&pool, &snap, next.range.clone()));
                    }
                }
            }
        }
        self.parallel.segments_labeled += segments.len() as u64;
        self.reclaim_retired(&pool, &mut retired, true);
        responses
            .into_iter()
            .map(|r| r.expect("every operation answered"))
            .collect()
    }

    /// Drains retired serving snapshots back into the live labeler,
    /// oldest first, stopping at the first snapshot some pool worker may
    /// still be reading: a snapshot is reclaimable once the minimum
    /// published epoch has moved past the epoch its readers pinned (no
    /// published epoch at all means every worker is idle).  `force`
    /// drains unconditionally — the end-of-run barrier, valid because
    /// every labeling batch has been waited on by then.
    fn reclaim_retired(
        &mut self,
        pool: &WorkerPool,
        retired: &mut Vec<(u64, Arc<ServiceSnapshot>)>,
        force: bool,
    ) {
        let min = pool.min_published_epoch();
        while let Some((epoch, _)) = retired.first() {
            let passed = min.is_none_or(|min| *epoch < min);
            if !(force || passed) {
                break;
            }
            let (_, snap) = retired.remove(0);
            self.labeler.retire_snapshot(snap.labeler());
            self.parallel.snapshots_reclaimed += 1;
        }
    }

    /// Partitions the op stream at snapshot boundaries: the ops whose
    /// application changes what a label *is* — `AddSecurityView` under
    /// incremental invalidation (the only registry mutation), every
    /// mutation under flush-on-mutation (a flush changes what a labeling
    /// *costs*, which the baseline exists to measure).
    fn segment_ops(&self, ops: &[Operation]) -> Vec<Segment> {
        let is_boundary = |op: &Operation| match self.config.invalidation {
            InvalidationMode::Incremental => matches!(op, Operation::AddSecurityView { .. }),
            InvalidationMode::FlushOnMutation => op.is_mutation(),
        };
        let mut segments = Vec::new();
        let mut start = 0;
        for (i, op) in ops.iter().enumerate() {
            if is_boundary(op) {
                segments.push(Segment {
                    range: start..i,
                    boundary: Some(i),
                });
                start = i + 1;
            }
        }
        segments.push(Segment {
            range: start..ops.len(),
            boundary: None,
        });
        segments
    }

    /// Validates and labels one admission through the **live** labeler —
    /// the fused labeling step of the degenerate single-worker pipeline.
    /// Equivalent to [`label_segment`] against a snapshot taken at the
    /// segment's start: nothing mutates the registry inside a segment, so
    /// the live registry is the segment's registry at every position.
    ///
    /// # Panics
    ///
    /// Panics on non-admission operations.
    #[allow(clippy::type_complexity)]
    fn label_admission_live<'a>(
        &self,
        op: &'a Operation,
    ) -> (
        PrincipalId,
        AdmissionQuery<'a>,
        bool,
        Result<Vec<PackedLabel>, ServiceError>,
    ) {
        let (principal, query, commit) = match op {
            Operation::Submit { principal, query } => {
                (*principal, AdmissionQuery::Plain(query), true)
            }
            Operation::Check { principal, query } => {
                (*principal, AdmissionQuery::Plain(query), false)
            }
            Operation::SubmitInterned { principal, query } => {
                (*principal, AdmissionQuery::Interned(*query), true)
            }
            Operation::CheckInterned { principal, query } => {
                (*principal, AdmissionQuery::Interned(*query), false)
            }
            _ => unreachable!("label_admission_live requires an admission operation"),
        };
        let outcome = self
            .validate_principal(principal)
            .and_then(|()| match query {
                AdmissionQuery::Plain(q) => Ok(self.labeler.label_packed(q)),
                AdmissionQuery::Interned(id) => {
                    self.validate_query_id(id)?;
                    Ok(self.labeler.label_packed_interned(id))
                }
            });
        (principal, query, commit, outcome)
    }

    /// Walks one segment's ops in stream order on the calling thread:
    /// consecutive labeled admissions accumulate into decision runs that
    /// fan out per policy shard, and in-segment policy mutations / audits
    /// apply at their position against the serving snapshot's frozen
    /// registry.  On the degenerate single-worker path both options are
    /// `None`: the live registry *is* the segment's registry, and each
    /// admission labels right here instead of from a staged worker result.
    /// `coverage` (absolute-indexed, from
    /// [`batch_coverage`](Self::batch_coverage)) refuses in-segment
    /// mutations whose WAL records are not durable.
    fn pass_segment(
        &mut self,
        ops: &[Operation],
        range: std::ops::Range<usize>,
        serving: Option<&ServiceSnapshot>,
        labels: Option<Vec<LabeledAdmission>>,
        coverage: Option<&[bool]>,
        responses: &mut [Option<Response>],
    ) {
        let mut labeled = labels.map(Vec::into_iter);
        // (op index, principal, query, commit, packed label) of the pending
        // decision run.
        let mut run: Vec<(
            usize,
            PrincipalId,
            AdmissionQuery<'_>,
            bool,
            Vec<PackedLabel>,
        )> = Vec::with_capacity(range.len());
        for i in range {
            let op = &ops[i];
            match op {
                Operation::Submit { .. }
                | Operation::Check { .. }
                | Operation::SubmitInterned { .. }
                | Operation::CheckInterned { .. } => {
                    let (principal, query, commit, outcome) = match labeled.as_mut() {
                        Some(staged) => {
                            let admission = staged.next().expect("one labeled entry per admission");
                            debug_assert_eq!(admission.index, i, "labels arrive in stream order");
                            (
                                admission.principal,
                                admission_query(op),
                                admission.commit,
                                admission.outcome,
                            )
                        }
                        None => self.label_admission_live(op),
                    };
                    match outcome {
                        Ok(packed) => {
                            self.stats.admissions += 1;
                            run.push((i, principal, query, commit, packed));
                        }
                        Err(err) => responses[i] = Some(Response::Rejected(err)),
                    }
                }
                Operation::GrantView { principal, .. }
                | Operation::RevokeView { principal, .. }
                | Operation::AuditApp { principal } => {
                    self.flush_decisions_for(*principal, &mut run, responses);
                    let covered = coverage.is_none_or(|c| c[i]);
                    responses[i] = Some(if op.is_mutation() && !covered {
                        Response::Rejected(ServiceError::DurabilityUnavailable)
                    } else {
                        self.apply_mutation(op, serving)
                    });
                }
                Operation::AddSecurityView { .. } => {
                    unreachable!(
                        "AddSecurityView ops are segment boundaries, never segment members"
                    )
                }
            }
        }
        self.flush_decisions(&mut run, responses);
    }

    /// Flushes the pending decision run only if `principal` has a decision
    /// in it.  A grant, revoke or audit touches exactly one principal's
    /// state, and policy decisions read exactly their own principal's
    /// state, so pending decisions for *other* principals commute with the
    /// mutation — the run keeps accumulating across it, which is what lets
    /// the pipelined pass decide a whole segment in (usually) one fan-out
    /// where `run_batch` splits at every mutation.
    fn flush_decisions_for(
        &mut self,
        principal: PrincipalId,
        run: &mut Vec<(
            usize,
            PrincipalId,
            AdmissionQuery<'_>,
            bool,
            Vec<PackedLabel>,
        )>,
        responses: &mut [Option<Response>],
    ) {
        if run.iter().any(|&(_, p, _, _, _)| p == principal) {
            self.flush_decisions(run, responses);
        }
    }

    /// Decides one pending run of labeled admissions (shard requests
    /// fanned out on the worker pool through `decide_batch_on`),
    /// recording committed submissions into the observed workload.
    fn flush_decisions(
        &mut self,
        run: &mut Vec<(
            usize,
            PrincipalId,
            AdmissionQuery<'_>,
            bool,
            Vec<PackedLabel>,
        )>,
        responses: &mut [Option<Response>],
    ) {
        if run.is_empty() {
            return;
        }
        if self.store.num_shards() == 1 {
            // Single-shard fast path: decide in place, no intermediate
            // batch / decision vectors, no worker fan-out to skip.
            for &(i, principal, query, commit, ref packed) in run.iter() {
                let decision = self.store.decide_packed(principal, packed, commit);
                if commit {
                    match query {
                        AdmissionQuery::Plain(q) => self.record(principal, q),
                        AdmissionQuery::Interned(id) => self.record_interned(principal, id),
                    }
                }
                responses[i] = Some(Response::Decision(decision));
            }
            run.clear();
            return;
        }
        let batch: Vec<(PrincipalId, &[PackedLabel], bool)> = run
            .iter()
            .map(|&(_, principal, _, commit, ref packed)| (principal, packed.as_slice(), commit))
            .collect();
        let pool = Arc::clone(self.worker_pool());
        let decisions = self.store.decide_batch_on(&pool, &batch);
        for (&(i, principal, query, commit, _), decision) in run.iter().zip(decisions) {
            if commit {
                match query {
                    AdmissionQuery::Plain(q) => self.record(principal, q),
                    AdmissionQuery::Interned(id) => self.record_interned(principal, id),
                }
            }
            responses[i] = Some(Response::Decision(decision));
        }
        run.clear();
    }

    /// Applies an in-segment grant or revoke, resolving the view name
    /// against the serving snapshot's frozen registry — which equals the
    /// live registry at the op's stream position, because the only registry
    /// mutations are segment boundaries.  On the degenerate single-worker
    /// path (`serving` is `None`) the live registry is used directly.
    fn apply_policy_mutation(
        &mut self,
        principal: PrincipalId,
        view: &str,
        grant: bool,
        serving: Option<&ServiceSnapshot>,
    ) -> Response {
        if let Err(err) = self.validate_principal(principal) {
            return Response::Rejected(err);
        }
        let registry = match serving {
            Some(snapshot) => snapshot.security_views(),
            None => self.labeler.security_views(),
        };
        let Some(id) = registry.id_by_name(view) else {
            return Response::Rejected(ServiceError::UnknownView(view.to_owned()));
        };
        if grant {
            self.store.grant_view(principal, registry, id);
        } else {
            self.store.revoke_view(principal, registry, id);
        }
        self.after_mutation();
        Response::PolicyUpdated
    }

    /// Applies an in-segment audit, relabeling the observed workload
    /// through the serving snapshot (the registry state at the op's stream
    /// position); the degenerate single-worker path (`None`) audits through
    /// the live labeler, which is at the same registry state.
    fn apply_audit(
        &mut self,
        principal: PrincipalId,
        serving: Option<&ServiceSnapshot>,
    ) -> Response {
        let Some(snapshot) = serving else {
            return match self.audit_app(principal) {
                Ok(report) => Response::Audit(report),
                Err(err) => Response::Rejected(err),
            };
        };
        if let Err(err) = self.validate_principal(principal) {
            return Response::Rejected(err);
        }
        if !self.history_enabled() {
            return Response::Rejected(ServiceError::AuditingDisabled);
        }
        self.stats.audits += 1;
        let requested = requested_views(self.store.policy(principal), snapshot.security_views());
        let workload: Vec<ConjunctiveQuery> =
            self.history[principal.index()].iter().cloned().collect();
        Response::Audit(audit_app(snapshot.labeler(), requested, &workload))
    }
}

/// One segment of a pipelined batch: a run of non-boundary ops plus the
/// boundary op (if any) that terminates it.
struct Segment {
    range: std::ops::Range<usize>,
    boundary: Option<usize>,
}

/// Labeling batches are split into this many chunks per pool worker:
/// more chunks than workers, so a worker that drew cache-cold or
/// wide-query chunks sheds the tail to idle siblings through stealing.
const CHUNKS_PER_WORKER: usize = 4;

/// The owned query operand of a staged admission — cloned out of the
/// request stream so the worker pool's `'static` tasks can carry it
/// (interned admissions, the hot serving path, stage as 8-byte copies).
#[derive(Clone)]
enum StagedQuery {
    Plain(ConjunctiveQuery),
    Interned(QueryId),
}

impl StagedQuery {
    /// Clones the borrowed request-loop operand into its owned form.
    fn from_admission(query: AdmissionQuery<'_>) -> Self {
        match query {
            AdmissionQuery::Plain(q) => StagedQuery::Plain(q.clone()),
            AdmissionQuery::Interned(id) => StagedQuery::Interned(id),
        }
    }
}

/// One admission cloned out of a segment for the pool hand-off.
#[derive(Clone)]
struct StagedAdmission {
    /// Absolute index of the admission in the batch.
    index: usize,
    principal: PrincipalId,
    /// True for `Submit` / `SubmitInterned` (the decision commits).
    commit: bool,
    query: StagedQuery,
}

/// One admission of a segment, labeled by the worker fan-out: the packed
/// label on success, the validation error otherwise.
struct LabeledAdmission {
    /// Absolute index of the admission in the batch.
    index: usize,
    principal: PrincipalId,
    /// True for `Submit` / `SubmitInterned` (the decision commits).
    commit: bool,
    outcome: Result<Vec<PackedLabel>, ServiceError>,
}

/// The admission operand of an admission operation.
///
/// # Panics
///
/// Panics on non-admission operations.
fn admission_query(op: &Operation) -> AdmissionQuery<'_> {
    match op {
        Operation::Submit { query, .. } | Operation::Check { query, .. } => {
            AdmissionQuery::Plain(query)
        }
        Operation::SubmitInterned { query, .. } | Operation::CheckInterned { query, .. } => {
            AdmissionQuery::Interned(*query)
        }
        _ => unreachable!("admission_query requires an admission operation"),
    }
}

/// Clones every admission of one segment out of the op stream into owned
/// [`StagedAdmission`]s, in stream order — the hand-off unit the worker
/// pool's `'static` tasks can carry.  On the hot serving path admissions
/// arrive interned, so the clone is an 8-byte id copy.
fn stage_admissions(ops: &[Operation], base: usize) -> Vec<StagedAdmission> {
    ops.iter()
        .enumerate()
        .filter_map(|(i, op)| {
            let (principal, query, commit) = match op {
                Operation::Submit { principal, query } => {
                    (*principal, StagedQuery::Plain(query.clone()), true)
                }
                Operation::Check { principal, query } => {
                    (*principal, StagedQuery::Plain(query.clone()), false)
                }
                Operation::SubmitInterned { principal, query } => {
                    (*principal, StagedQuery::Interned(*query), true)
                }
                Operation::CheckInterned { principal, query } => {
                    (*principal, StagedQuery::Interned(*query), false)
                }
                _ => return None,
            };
            Some(StagedAdmission {
                index: base + i,
                principal,
                commit,
                query,
            })
        })
        .collect()
}

/// Labels one staged admission against a frozen snapshot, writing cache
/// work into the caller's private overlay `lane`.  Validation — unknown
/// principals, foreign interned ids — happens here too, at the op's
/// stream position.
fn label_staged(
    snapshot: &ServiceSnapshot,
    lane: usize,
    admission: StagedAdmission,
    num_principals: usize,
) -> LabeledAdmission {
    let StagedAdmission {
        index,
        principal,
        commit,
        query,
    } = admission;
    let outcome = if principal.index() >= num_principals {
        Err(ServiceError::UnknownPrincipal(principal))
    } else {
        match query {
            StagedQuery::Plain(q) => Ok(snapshot.label_packed_in(lane, &q)),
            StagedQuery::Interned(id) if snapshot.contains(id) => {
                Ok(snapshot.label_packed_interned_in(lane, id))
            }
            StagedQuery::Interned(id) => Err(ServiceError::UnknownQuery(id)),
        }
    };
    LabeledAdmission {
        index,
        principal,
        commit,
        outcome,
    }
}

/// Splits an owned vector into chunks of (at most) `chunk_len` without
/// cloning the elements — the pool hand-off unit builder.
fn chunk_owned<T>(items: Vec<T>, chunk_len: usize) -> Vec<Vec<T>> {
    let mut inputs = Vec::with_capacity(items.len().div_ceil(chunk_len.max(1)));
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len.max(1)).collect();
        if chunk.is_empty() {
            break;
        }
        inputs.push(chunk);
    }
    inputs
}

/// The host's available parallelism, with a serial fallback.
fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Collapses a policy-mutation [`Response`] back to the `Result` the
/// direct mutator methods return.
fn into_unit(response: Response) -> Result<(), ServiceError> {
    match response {
        Response::PolicyUpdated => Ok(()),
        Response::Rejected(err) => Err(err),
        other => unreachable!("policy mutations answer PolicyUpdated or Rejected, got {other:?}"),
    }
}

/// Encodes the WAL record for `op` into `out`, returning whether the
/// operation is loggable at all.  Checks and audits are read-only —
/// nothing to recover — and an interned submit whose id the interner does
/// not know changes no state either (admission will reject it), so none
/// of those produce a record.  Known interned submits are logged as their
/// resolved canonical query: replay re-interns the same canonical form,
/// so recovered ids stay stable.
fn encode_loggable(op: &Operation, interner: &SharedQueryInterner, out: &mut Vec<u8>) -> bool {
    match op {
        Operation::Submit { principal, query } => {
            durable::encode_submit(*principal, query, out);
            true
        }
        Operation::SubmitInterned { principal, query } => {
            let guard = interner.read().unwrap_or_else(|e| e.into_inner());
            if !guard.contains(*query) {
                return false;
            }
            let resolved = guard.to_query(*query);
            durable::encode_submit(*principal, &resolved, out);
            true
        }
        Operation::GrantView { principal, view } => {
            durable::encode_grant(*principal, view, out);
            true
        }
        Operation::RevokeView { principal, view } => {
            durable::encode_revoke(*principal, view, out);
            true
        }
        Operation::AddSecurityView { name, query } => {
            durable::encode_add_view(name, query, out);
            true
        }
        Operation::Check { .. } | Operation::CheckInterned { .. } | Operation::AuditApp { .. } => {
            false
        }
    }
}

/// Whether [`encode_loggable`] would produce a record for `op`, without
/// encoding anything — the coverage pre-pass uses this to map a durable
/// record count back onto batch positions, so the two MUST agree
/// exactly (the round-trip is unit-tested).
fn is_loggable(op: &Operation, interner: &SharedQueryInterner) -> bool {
    match op {
        Operation::Submit { .. }
        | Operation::GrantView { .. }
        | Operation::RevokeView { .. }
        | Operation::AddSecurityView { .. } => true,
        Operation::SubmitInterned { query, .. } => interner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains(*query),
        Operation::Check { .. } | Operation::CheckInterned { .. } | Operation::AuditApp { .. } => {
            false
        }
    }
}

/// Wraps a checkpoint/WAL decode error as the `InvalidData` I/O error
/// [`DisclosureService::open_durable`] reports.
fn invalid_data(err: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

/// A checkpoint in flight between
/// [`DisclosureService::begin_checkpoint`] and
/// [`DisclosureService::complete_checkpoint`]: the service state frozen at
/// the pending sequence number, *owned*, so the expensive serialization
/// runs without the service lock — on the caller's thread or as a worker
/// pool task.  See [`BackgroundCheckpointer`](crate::BackgroundCheckpointer)
/// for the intended use.
#[derive(Debug)]
pub struct PendingCheckpoint {
    /// The WAL sequence number the image will cover (last acknowledged
    /// record at `begin`).
    seq: u64,
    /// Whether the service was healthy at `begin` — decides whether the
    /// completion may retire old log segments (a checkpoint begun healthy
    /// but completed degraded must not, see
    /// [`DisclosureService::complete_checkpoint`]).
    healthy: bool,
    views: SecurityViews,
    /// The interner, pre-encoded under the lock: it lives behind the
    /// shared read-write handle workload generators clone, so its bytes
    /// are fixed eagerly instead of racing concurrent interning.
    interner: Vec<u8>,
    store: ShardedPolicyStore,
    history: Vec<VecDeque<ConjunctiveQuery>>,
}

impl PendingCheckpoint {
    /// The WAL sequence number the image will cover.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Serializes the frozen state into the checkpoint payload — the
    /// expensive half of a checkpoint, safe to run without the service
    /// lock.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        encode_state_parts(
            &self.views,
            &self.interner,
            &self.store,
            &self.history,
            &mut payload,
        );
        payload
    }
}

/// Serializes one frozen service state — the checkpoint payload, the
/// inverse of `DisclosureService::decode_state`.  Free function so the
/// off-lock [`PendingCheckpoint::encode`] and any future callers produce
/// byte-identical images.
fn encode_state_parts(
    views: &SecurityViews,
    interner_bytes: &[u8],
    store: &ShardedPolicyStore,
    history: &[VecDeque<ConjunctiveQuery>],
    out: &mut Vec<u8>,
) {
    views.encode_into(out);
    out.extend_from_slice(interner_bytes);
    store.encode_into(out);
    put_len(out, history.len());
    for log in history {
        put_len(out, log.len());
        for query in log {
            fdc_cq::wire::encode_query(query, out);
        }
    }
}
