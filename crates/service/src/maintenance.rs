//! Background maintenance: the checkpoint thread that bounds replay
//! debt and drives degraded services back to health.
//!
//! A durable [`DisclosureService`] only
//! checkpoints when someone calls
//! [`checkpoint`](crate::DisclosureService::checkpoint).  The
//! [`BackgroundCheckpointer`] is that someone: a thread that, on an
//! interval, begins a checkpoint under the service lock, encodes the
//! image **off the lock** on the service's worker pool, and completes it
//! under the lock again — failures are counted in
//! [`DurabilityHealth::checkpoint_failures`](crate::DurabilityHealth::checkpoint_failures)
//! and retried next tick.  Because
//! [`checkpoint`](crate::DisclosureService::checkpoint) is also the
//! Degraded → Healthy promotion path, the same thread doubles as the
//! self-healing loop: once storage recovers, the next tick lands an
//! image, replaces the log, and the service resumes accepting
//! mutations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::DisclosureService;

/// How often the stop flag is polled while waiting out the interval, so
/// [`stop`](BackgroundCheckpointer::stop) returns promptly even under
/// long checkpoint intervals.
const STOP_POLL: Duration = Duration::from_millis(20);

/// A background thread that periodically checkpoints a shared
/// [`DisclosureService`] — bounding the WAL replay debt while healthy,
/// and promoting the service back from degraded read-only serving once
/// storage recovers.
///
/// The service must be shared behind `Arc<Mutex<_>>`.  On a healthy
/// service the thread holds the lock only for the two cheap ends of a
/// checkpoint — [`begin_checkpoint`](DisclosureService::begin_checkpoint)
/// (WAL commit + state freeze) and
/// [`complete_checkpoint`](DisclosureService::complete_checkpoint) (image
/// write + log retirement) — while the expensive payload serialization
/// runs *between* them as a task on the service's own worker pool, with
/// the lock released: admissions and mutations proceed concurrently, and
/// their WAL records past the frozen sequence number survive the
/// completion's pruning.  Degraded services checkpoint synchronously
/// under the lock (mutations are refused then anyway, and promotion
/// replaces the log wholesale).  Dropping the handle stops the thread
/// (signal + join), as does the explicit [`stop`](Self::stop).
///
/// ```no_run
/// use std::sync::{Arc, Mutex};
/// use std::time::Duration;
/// use fdc_core::SecurityViews;
/// use fdc_service::{BackgroundCheckpointer, DisclosureService, ServiceConfig};
///
/// let (service, _report) = DisclosureService::open_durable(
///     SecurityViews::paper_example(),
///     ServiceConfig::default(),
///     std::path::Path::new("/var/lib/fdc"),
/// )?;
/// let service = Arc::new(Mutex::new(service));
/// let checkpointer =
///     BackgroundCheckpointer::spawn(Arc::clone(&service), Duration::from_secs(30));
/// // ... serve through `service` ...
/// checkpointer.stop();
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct BackgroundCheckpointer {
    handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl BackgroundCheckpointer {
    /// Spawns the maintenance thread, checkpointing `service` every
    /// `interval` (first attempt one interval after spawn).
    pub fn spawn(service: Arc<Mutex<DisclosureService>>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || loop {
            let mut waited = Duration::ZERO;
            while waited < interval {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                let step = STOP_POLL.min(interval - waited);
                std::thread::sleep(step);
                waited += step;
            }
            if flag.load(Ordering::Relaxed) {
                return;
            }
            // Failures are counted in the service's health block and
            // retried next tick; there is nobody to return them to here.
            let mut guard = service.lock().unwrap_or_else(|e| e.into_inner());
            if guard.is_degraded() {
                // The Degraded → Healthy promotion path replaces the log
                // wholesale; mutations are refused anyway, so there is
                // nothing to overlap with — checkpoint under the lock.
                let _ = guard.checkpoint();
            } else if let Ok(pending) = guard.begin_checkpoint() {
                // Healthy: freeze the cheap state under the lock, then
                // release it and serialize the image as a task on the
                // service's own worker pool, so admissions and mutations
                // proceed concurrently with the encode.  The `Err` arm is
                // a non-durable service: nothing to checkpoint, ever.
                let pool = guard.pool_handle();
                drop(guard);
                let mut encoded = pool.run(vec![pending], |pending, _ctx| {
                    let payload = pending.encode();
                    (pending, payload)
                });
                let (pending, payload) = encoded.pop().expect("one encode task");
                let mut guard = service.lock().unwrap_or_else(|e| e.into_inner());
                let _ = guard.complete_checkpoint(&pending, &payload);
            }
        });
        BackgroundCheckpointer {
            handle: Some(handle),
            stop,
        }
    }

    /// Signals the thread and joins it.  Any in-flight checkpoint
    /// attempt completes first.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BackgroundCheckpointer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_core::SecurityViews;
    use fdc_service_test_dir::test_dir;

    // A local tempdir helper, mirroring the one in `fdc-durability`.
    mod fdc_service_test_dir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        pub struct TestDir(pub PathBuf);

        impl Drop for TestDir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }

        pub fn test_dir(tag: &str) -> TestDir {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("fdc-maintenance-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            TestDir(dir)
        }
    }

    #[test]
    fn background_checkpointer_checkpoints_and_stops() {
        let home = test_dir("bg");
        let (service, _) = DisclosureService::open_durable(
            SecurityViews::paper_example(),
            crate::ServiceConfig::default(),
            &home.0,
        )
        .unwrap();
        let service = Arc::new(Mutex::new(service));
        let checkpointer =
            BackgroundCheckpointer::spawn(Arc::clone(&service), Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            {
                let service = service.lock().unwrap();
                if service.stats().durability.checkpoints >= 2 {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background thread never checkpointed"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        checkpointer.stop();
        let service = service.lock().unwrap();
        assert!(service.stats().durability.checkpoints >= 2);
        assert!(!service.is_degraded());
    }

    #[test]
    fn dropping_the_handle_stops_the_thread() {
        let home = test_dir("drop");
        let (service, _) = DisclosureService::open_durable(
            SecurityViews::paper_example(),
            crate::ServiceConfig::default(),
            &home.0,
        )
        .unwrap();
        let service = Arc::new(Mutex::new(service));
        let checkpointer =
            BackgroundCheckpointer::spawn(Arc::clone(&service), Duration::from_secs(3600));
        drop(checkpointer); // must not hang for the hour-long interval
        assert_eq!(Arc::strong_count(&service), 1);
    }
}
