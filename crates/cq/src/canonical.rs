//! Canonical renaming of queries.
//!
//! Two queries that differ only in variable identities/names describe the
//! same query.  [`rename_canonical`] renumbers variables in order of first
//! occurrence in the body (and renames them `x0, x1, …`), which gives a
//! cheap syntactic normal form: structurally identical queries become `Eq`-
//! equal after renaming.  This is *not* full semantic canonization (that
//! would require minimization plus graph canonization); use
//! [`containment::equivalent`](crate::containment::equivalent) for semantic
//! comparisons.
//!
//! For whole-query identity, the interned query plane
//! ([`intern`](crate::intern)) canonicalizes with the same first-occurrence
//! numbering and hands out dense [`QueryId`](crate::intern::QueryId)s whose
//! equality *is* canonical-key equality, without allocating a key vector per
//! lookup.  [`atom_key`] remains for callers that need a hashable
//! single-atom key without an interner.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::catalog::RelId;
use crate::query::ConjunctiveQuery;
use crate::term::{Constant, Term, VarId, VarKind};

/// One position of an [`AtomKey`]: a constant, or a variable renamed to its
/// first-occurrence index with its kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeySlot {
    /// The position holds this constant.
    Const(Constant),
    /// The position holds the `n`-th distinct variable of the atom (by
    /// first occurrence, left to right), with the given kind.
    Var(u32, VarKind),
}

/// A cheap, hashable canonical key for single-atom queries.
///
/// Two single-atom queries have equal keys **iff** they are structurally
/// identical up to variable renaming — the same relation, the same constants
/// in the same positions, the same variable-equality pattern, and the same
/// distinguished/existential tags.  For the single-atom queries produced by
/// `Dissect` this is exactly label equivalence, because per-atom `ℓ⁺` is
/// invariant under variable renaming, which is what makes the key usable as
/// a memo-table key for labeling.
///
/// Building a key is one left-to-right pass over the atom (no query
/// construction, no string formatting), so it is far cheaper than
/// [`rename_canonical`] while distinguishing exactly the same single-atom
/// queries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AtomKey {
    relation: RelId,
    slots: Vec<KeySlot>,
}

impl AtomKey {
    /// The base relation of the keyed atom.
    pub fn relation(&self) -> RelId {
        self.relation
    }
}

/// Computes the canonical key of a single-atom query, or `None` if the query
/// has more than one atom (multi-atom queries must be dissected first).
pub fn atom_key(query: &ConjunctiveQuery) -> Option<AtomKey> {
    if !query.is_single_atom() {
        return None;
    }
    let atom = &query.atoms()[0];
    let mut numbering = VarNumbering::new(query.num_vars());
    Some(AtomKey {
        relation: atom.relation,
        slots: key_slots(atom, &mut numbering),
    })
}

/// Dense first-occurrence renumbering of variable ids (query variable ids
/// are dense, so a flat array beats a hash map here).
struct VarNumbering {
    assigned: Vec<u32>,
    next: u32,
}

const UNASSIGNED: u32 = u32::MAX;

impl VarNumbering {
    fn new(num_vars: usize) -> Self {
        VarNumbering {
            assigned: vec![UNASSIGNED; num_vars],
            next: 0,
        }
    }

    fn number(&mut self, v: VarId) -> u32 {
        let slot = &mut self.assigned[v.index()];
        if *slot == UNASSIGNED {
            *slot = self.next;
            self.next += 1;
        }
        *slot
    }
}

fn key_slots(atom: &Atom, numbering: &mut VarNumbering) -> Vec<KeySlot> {
    atom.terms
        .iter()
        .map(|term| match term {
            Term::Const(c) => KeySlot::Const(c.clone()),
            Term::Var(v, kind) => KeySlot::Var(numbering.number(*v), *kind),
        })
        .collect()
}

/// Renumbers the variables of a query by order of first occurrence in the
/// body and gives them synthetic names `x0, x1, …`.
pub fn rename_canonical(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut mapping: HashMap<VarId, VarId> = HashMap::new();
    let mut kinds: Vec<VarKind> = Vec::new();
    let mut names: Vec<String> = Vec::new();

    let mut atoms: Vec<Atom> = Vec::with_capacity(query.num_atoms());
    for atom in query.atoms() {
        let terms = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v, kind) => {
                    let next_id = VarId(mapping.len() as u32);
                    let new_id = *mapping.entry(*v).or_insert_with(|| {
                        kinds.push(*kind);
                        names.push(format!("x{}", next_id.0));
                        next_id
                    });
                    Term::Var(new_id, *kind)
                }
                Term::Const(c) => Term::Const(c.clone()),
            })
            .collect();
        atoms.push(Atom::new(atom.relation, terms));
    }

    ConjunctiveQuery::from_parts(atoms, kinds, names)
        .expect("renaming a valid query preserves validity")
}

/// A hashable structural key for a query: its canonical renaming.
///
/// Queries with equal keys are syntactically identical up to variable names;
/// unequal keys say nothing (the queries may still be semantically
/// equivalent).
pub fn structural_key(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    rename_canonical(query)
}

/// True if two queries are syntactically identical up to variable renaming.
pub fn structurally_identical(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    rename_canonical(a) == rename_canonical(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    #[test]
    fn renaming_is_stable_and_idempotent() {
        let c = catalog();
        let q = parse_query(&c, "Q(b) :- Meetings(a, b), Contacts(b, d, 'Intern')").unwrap();
        let canon = rename_canonical(&q);
        assert_eq!(canon, rename_canonical(&canon));
        // Variable names become x0, x1, ... in body-occurrence order.
        assert_eq!(canon.var_name(VarId(0)), "x0");
        assert_eq!(
            canon.display_with(&c).to_string(),
            "Q(x1) :- Meetings(x0, x1), Contacts(x1, x2, 'Intern')"
        );
    }

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        let c = catalog();
        let a = parse_query(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        let b = parse_query(&c, "Q(p) :- Meetings(p, q), Contacts(q, r, 'Intern')").unwrap();
        assert_ne!(a, b); // different variable names
        assert!(structurally_identical(&a, &b));
        assert_eq!(structural_key(&a), structural_key(&b));
    }

    #[test]
    fn different_structure_gives_different_keys() {
        let c = catalog();
        let a = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        let b = parse_query(&c, "Q(y) :- Meetings(x, y)").unwrap();
        let d = parse_query(&c, "Q(x) :- Meetings(x, 'Cathy')").unwrap();
        assert!(!structurally_identical(&a, &b));
        assert!(!structurally_identical(&a, &d));
    }

    #[test]
    fn kinds_are_preserved_by_renaming() {
        let c = catalog();
        let q = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        let canon = rename_canonical(&q);
        assert_eq!(canon.var_kind(VarId(0)), VarKind::Distinguished);
        assert_eq!(canon.var_kind(VarId(1)), VarKind::Existential);
        assert_eq!(canon.num_vars(), q.num_vars());
        assert_eq!(canon.num_atoms(), q.num_atoms());
    }

    #[test]
    fn atom_keys_agree_with_structural_identity_on_single_atoms() {
        let c = catalog();
        let pairs = [
            // Alpha-equivalent pairs share a key.
            ("Q(x) :- Meetings(x, y)", "Q(p) :- Meetings(p, q)", true),
            (
                "Q(x) :- Meetings(x, 'Cathy')",
                "Q(a) :- Meetings(a, 'Cathy')",
                true,
            ),
            ("Q() :- Meetings(z, z)", "Q() :- Meetings(w, w)", true),
            // Different structure means different keys.
            ("Q(x) :- Meetings(x, y)", "Q(y) :- Meetings(x, y)", false),
            (
                "Q(x) :- Meetings(x, y)",
                "Q(x) :- Meetings(x, 'Cathy')",
                false,
            ),
            ("Q() :- Meetings(z, z)", "Q() :- Meetings(x, y)", false),
            (
                "Q(x) :- Meetings(x, 'Cathy')",
                "Q(x) :- Meetings(x, 'Bob')",
                false,
            ),
        ];
        for (left, right, expect_equal) in pairs {
            let a = parse_query(&c, left).unwrap();
            let b = parse_query(&c, right).unwrap();
            let ka = atom_key(&a).unwrap();
            let kb = atom_key(&b).unwrap();
            assert_eq!(
                ka == kb,
                expect_equal,
                "key comparison of {left} vs {right}"
            );
            assert_eq!(
                structurally_identical(&a, &b),
                expect_equal,
                "structural identity of {left} vs {right}"
            );
        }
    }

    #[test]
    fn atom_keys_are_single_atom_only_and_expose_the_relation() {
        let c = catalog();
        let single = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        let key = atom_key(&single).unwrap();
        assert_eq!(key.relation(), c.resolve("Meetings").unwrap());
        let multi = parse_query(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        assert!(atom_key(&multi).is_none());
    }

    #[test]
    fn structural_identity_distinguishes_exactly_renamings() {
        let c = catalog();
        let pairs = [
            (
                "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
                "Q(p) :- Meetings(p, q), Contacts(q, r, 'Intern')",
                true,
            ),
            (
                "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
                "Q(x) :- Meetings(x, y), Contacts(y, w, 'Manager')",
                false,
            ),
            (
                // Atom order is part of the key, as for structural_key.
                "Q() :- Meetings(x, y), Contacts(p, q, r)",
                "Q() :- Contacts(p, q, r), Meetings(x, y)",
                false,
            ),
            (
                // The cross-atom join pattern matters.
                "Q() :- Meetings(x, y), Meetings(y, z)",
                "Q() :- Meetings(x, y), Meetings(z, w)",
                false,
            ),
        ];
        for (left, right, expect_equal) in pairs {
            let a = parse_query(&c, left).unwrap();
            let b = parse_query(&c, right).unwrap();
            assert_eq!(
                structurally_identical(&a, &b),
                expect_equal,
                "structural identity of {left} vs {right}"
            );
        }
    }

    #[test]
    fn atom_keys_collapse_renamings_and_distinguish_join_patterns() {
        let c = catalog();
        let a = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        let b = parse_query(&c, "Q(p) :- Meetings(p, q)").unwrap();
        let d = parse_query(&c, "Q(x) :- Meetings(x, x)").unwrap();
        assert!(atom_key(&a) == atom_key(&b));
        assert!(atom_key(&a) != atom_key(&d));
    }

    #[test]
    fn atom_keys_hash_consistently() {
        use std::collections::HashSet;
        let c = catalog();
        let mut set = HashSet::new();
        set.insert(atom_key(&parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap()).unwrap());
        // An alpha-renamed query hits the same entry.
        assert!(!set.insert(atom_key(&parse_query(&c, "Q(a) :- Meetings(a, b)").unwrap()).unwrap()));
        // A different shape does not.
        assert!(
            set.insert(atom_key(&parse_query(&c, "Q(a, b) :- Meetings(a, b)").unwrap()).unwrap())
        );
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn atom_order_matters_for_the_structural_key() {
        let c = catalog();
        let a = parse_query(&c, "Q() :- Meetings(x, y), Contacts(p, q, r)").unwrap();
        let b = parse_query(&c, "Q() :- Contacts(p, q, r), Meetings(x, y)").unwrap();
        // Structural identity is deliberately syntactic; semantic equality is
        // the job of `containment::equivalent`.
        assert!(!structurally_identical(&a, &b));
        assert!(crate::containment::equivalent(&a, &b));
    }
}
