//! Canonical renaming of queries.
//!
//! Two queries that differ only in variable identities/names describe the
//! same query.  [`rename_canonical`] renumbers variables in order of first
//! occurrence in the body (and renames them `x0, x1, …`), which gives a
//! cheap syntactic normal form: structurally identical queries become `Eq`-
//! equal after renaming.  This is *not* full semantic canonization (that
//! would require minimization plus graph canonization); use
//! [`containment::equivalent`](crate::containment::equivalent) for semantic
//! comparisons.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::term::{Term, VarId, VarKind};

/// Renumbers the variables of a query by order of first occurrence in the
/// body and gives them synthetic names `x0, x1, …`.
pub fn rename_canonical(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut mapping: HashMap<VarId, VarId> = HashMap::new();
    let mut kinds: Vec<VarKind> = Vec::new();
    let mut names: Vec<String> = Vec::new();

    let mut atoms: Vec<Atom> = Vec::with_capacity(query.num_atoms());
    for atom in query.atoms() {
        let terms = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Var(v, kind) => {
                    let next_id = VarId(mapping.len() as u32);
                    let new_id = *mapping.entry(*v).or_insert_with(|| {
                        kinds.push(*kind);
                        names.push(format!("x{}", next_id.0));
                        next_id
                    });
                    Term::Var(new_id, *kind)
                }
                Term::Const(c) => Term::Const(c.clone()),
            })
            .collect();
        atoms.push(Atom::new(atom.relation, terms));
    }

    ConjunctiveQuery::from_parts(atoms, kinds, names)
        .expect("renaming a valid query preserves validity")
}

/// A hashable structural key for a query: its canonical renaming.
///
/// Queries with equal keys are syntactically identical up to variable names;
/// unequal keys say nothing (the queries may still be semantically
/// equivalent).
pub fn structural_key(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    rename_canonical(query)
}

/// True if two queries are syntactically identical up to variable renaming.
pub fn structurally_identical(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    rename_canonical(a) == rename_canonical(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    #[test]
    fn renaming_is_stable_and_idempotent() {
        let c = catalog();
        let q = parse_query(&c, "Q(b) :- Meetings(a, b), Contacts(b, d, 'Intern')").unwrap();
        let canon = rename_canonical(&q);
        assert_eq!(canon, rename_canonical(&canon));
        // Variable names become x0, x1, ... in body-occurrence order.
        assert_eq!(canon.var_name(VarId(0)), "x0");
        assert_eq!(
            canon.display_with(&c).to_string(),
            "Q(x1) :- Meetings(x0, x1), Contacts(x1, x2, 'Intern')"
        );
    }

    #[test]
    fn alpha_equivalent_queries_share_a_key() {
        let c = catalog();
        let a = parse_query(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        let b = parse_query(&c, "Q(p) :- Meetings(p, q), Contacts(q, r, 'Intern')").unwrap();
        assert_ne!(a, b); // different variable names
        assert!(structurally_identical(&a, &b));
        assert_eq!(structural_key(&a), structural_key(&b));
    }

    #[test]
    fn different_structure_gives_different_keys() {
        let c = catalog();
        let a = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        let b = parse_query(&c, "Q(y) :- Meetings(x, y)").unwrap();
        let d = parse_query(&c, "Q(x) :- Meetings(x, 'Cathy')").unwrap();
        assert!(!structurally_identical(&a, &b));
        assert!(!structurally_identical(&a, &d));
    }

    #[test]
    fn kinds_are_preserved_by_renaming() {
        let c = catalog();
        let q = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        let canon = rename_canonical(&q);
        assert_eq!(canon.var_kind(VarId(0)), VarKind::Distinguished);
        assert_eq!(canon.var_kind(VarId(1)), VarKind::Existential);
        assert_eq!(canon.num_vars(), q.num_vars());
        assert_eq!(canon.num_atoms(), q.num_atoms());
    }

    #[test]
    fn atom_order_matters_for_the_structural_key() {
        let c = catalog();
        let a = parse_query(&c, "Q() :- Meetings(x, y), Contacts(p, q, r)").unwrap();
        let b = parse_query(&c, "Q() :- Contacts(p, q, r), Meetings(x, y)").unwrap();
        // Structural identity is deliberately syntactic; semantic equality is
        // the job of `containment::equivalent`.
        assert!(!structurally_identical(&a, &b));
        assert!(crate::containment::equivalent(&a, &b));
    }
}
