//! Conjunctive queries in the paper's tagged-variable representation.
//!
//! Section 5 of the paper works with "a modified representation of
//! conjunctive queries where we associate each query with a list of its body
//! atoms and discard the head", tagging each variable as *distinguished* or
//! *existential*.  [`ConjunctiveQuery`] is exactly that representation, plus
//! enough bookkeeping (variable names, head order) to pretty-print queries in
//! the familiar `Q(x) :- R(x, y)` notation.

use std::collections::HashMap;
use std::fmt;

use crate::atom::Atom;
use crate::catalog::{Catalog, RelId};
use crate::error::{CqError, Result};
use crate::term::{Constant, Term, VarId, VarKind};

/// A conjunctive query: a list of body atoms with tagged variables.
///
/// Invariants maintained by the constructors:
///
/// * every variable id in `0..num_vars()` occurs in at least one atom;
/// * each variable has exactly one kind (recorded in the query and mirrored
///   by the tag on every occurrence);
/// * the body is non-empty.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    atoms: Vec<Atom>,
    var_kinds: Vec<VarKind>,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Builds a query from parts, validating the internal invariants.
    ///
    /// `var_kinds[i]` and `var_names[i]` describe variable `VarId(i)`.
    pub fn from_parts(
        atoms: Vec<Atom>,
        var_kinds: Vec<VarKind>,
        var_names: Vec<String>,
    ) -> Result<Self> {
        if atoms.is_empty() {
            return Err(CqError::EmptyBody);
        }
        assert_eq!(
            var_kinds.len(),
            var_names.len(),
            "var_kinds and var_names must describe the same variables"
        );
        let mut seen = vec![false; var_kinds.len()];
        for atom in &atoms {
            for term in &atom.terms {
                if let Term::Var(v, kind) = term {
                    let Some(expected) = var_kinds.get(v.index()) else {
                        return Err(CqError::ConflictingVariableKind(format!(
                            "variable {v} is out of range"
                        )));
                    };
                    if *expected != *kind {
                        return Err(CqError::ConflictingVariableKind(
                            var_names
                                .get(v.index())
                                .cloned()
                                .unwrap_or_else(|| v.to_string()),
                        ));
                    }
                    seen[v.index()] = true;
                }
            }
        }
        if let Some(unused) = seen.iter().position(|s| !s) {
            // A declared distinguished variable that never occurs in the body
            // makes the query unsafe; an unused existential variable is just
            // a builder bug.  Both are rejected.
            return Err(CqError::UnsafeHeadVariable(var_names[unused].clone()));
        }
        Ok(ConjunctiveQuery {
            atoms,
            var_kinds,
            var_names,
        })
    }

    /// Builds a query from atoms alone, inferring variable kinds from the
    /// tags on the terms and synthesizing names (`x0`, `x1`, …).
    ///
    /// Fails if the same variable id carries conflicting tags.
    pub fn from_atoms(atoms: Vec<Atom>) -> Result<Self> {
        if atoms.is_empty() {
            return Err(CqError::EmptyBody);
        }
        let mut kinds: HashMap<VarId, VarKind> = HashMap::new();
        let mut max_var: Option<u32> = None;
        for atom in &atoms {
            for term in &atom.terms {
                if let Term::Var(v, kind) = term {
                    match kinds.entry(*v) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if *e.get() != *kind {
                                return Err(CqError::ConflictingVariableKind(v.to_string()));
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(*kind);
                        }
                    }
                    max_var = Some(max_var.map_or(v.0, |m| m.max(v.0)));
                }
            }
        }
        let n = max_var.map_or(0, |m| m as usize + 1);
        let mut var_kinds = Vec::with_capacity(n);
        let mut var_names = Vec::with_capacity(n);
        for i in 0..n {
            let v = VarId(i as u32);
            let kind = kinds.get(&v).copied().ok_or_else(|| {
                CqError::ConflictingVariableKind(format!("variable {v} has a gap in numbering"))
            })?;
            var_kinds.push(kind);
            var_names.push(format!("x{i}"));
        }
        ConjunctiveQuery::from_parts(atoms, var_kinds, var_names)
    }

    /// The body atoms.
    #[inline]
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of body atoms.
    #[inline]
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.var_kinds.len()
    }

    /// The kind (distinguished / existential) of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable does not belong to this query.
    #[inline]
    pub fn var_kind(&self, v: VarId) -> VarKind {
        self.var_kinds[v.index()]
    }

    /// The name of a variable (used only for display).
    ///
    /// # Panics
    ///
    /// Panics if the variable does not belong to this query.
    #[inline]
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// All variable kinds, indexed by variable id.
    #[inline]
    pub fn var_kinds(&self) -> &[VarKind] {
        &self.var_kinds
    }

    /// Iterates over the distinguished variables in id order.
    pub fn distinguished_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.var_kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_distinguished())
            .map(|(i, _)| VarId(i as u32))
    }

    /// Iterates over the existential variables in id order.
    pub fn existential_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.var_kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| k.is_existential())
            .map(|(i, _)| VarId(i as u32))
    }

    /// True if the query has a single body atom.
    #[inline]
    pub fn is_single_atom(&self) -> bool {
        self.atoms.len() == 1
    }

    /// True if the query has no distinguished variables (a boolean query).
    pub fn is_boolean(&self) -> bool {
        self.var_kinds.iter().all(|k| k.is_existential())
    }

    /// The set of relations referenced by the body, deduplicated, in first
    /// occurrence order.
    pub fn relations_used(&self) -> Vec<RelId> {
        let mut out = Vec::new();
        for atom in &self.atoms {
            if !out.contains(&atom.relation) {
                out.push(atom.relation);
            }
        }
        out
    }

    /// Counts how many atoms reference each variable.
    ///
    /// Used by `Dissect` to find join variables (existential variables that
    /// appear in at least two atoms must be promoted to distinguished).
    pub fn atoms_per_variable(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_vars()];
        for atom in &self.atoms {
            let mut seen_in_atom = vec![false; self.num_vars()];
            for v in atom.variables() {
                if !seen_in_atom[v.index()] {
                    seen_in_atom[v.index()] = true;
                    counts[v.index()] += 1;
                }
            }
        }
        counts
    }

    /// Validates every atom's arity against a catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        for atom in &self.atoms {
            atom.validate(catalog)?;
        }
        Ok(())
    }

    /// Renders the query in datalog notation using the catalog for relation
    /// names, e.g. `Q(x, y) :- Meetings(x, y)`.
    ///
    /// The head lists the distinguished variables in order of first
    /// occurrence in the body, which is how the paper's examples are written.
    pub fn display_with<'a>(&'a self, catalog: &'a Catalog) -> QueryDisplay<'a> {
        QueryDisplay {
            query: self,
            catalog,
            head_name: "Q",
        }
    }

    /// Like [`display_with`](Self::display_with) with an explicit head name.
    pub fn display_named<'a>(
        &'a self,
        catalog: &'a Catalog,
        head_name: &'a str,
    ) -> QueryDisplay<'a> {
        QueryDisplay {
            query: self,
            catalog,
            head_name,
        }
    }

    /// The distinguished variables in order of first occurrence in the body.
    pub fn head_vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if self.var_kind(v).is_distinguished() && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Builds a query from parts without requiring every declared variable to
    /// occur in the body.
    ///
    /// Used internally by the rewriting machinery: the *expansion* of a
    /// candidate rewriting lives in the variable space of the original query
    /// plus fresh existential variables, and some of the original query's
    /// existential variables may simply not occur in it.  Kind consistency is
    /// still enforced.
    pub(crate) fn from_parts_allowing_unused(
        atoms: Vec<Atom>,
        var_kinds: Vec<VarKind>,
        var_names: Vec<String>,
    ) -> Result<Self> {
        if atoms.is_empty() {
            return Err(CqError::EmptyBody);
        }
        for atom in &atoms {
            for term in &atom.terms {
                if let Term::Var(v, kind) = term {
                    match var_kinds.get(v.index()) {
                        Some(expected) if expected == kind => {}
                        _ => {
                            return Err(CqError::ConflictingVariableKind(
                                var_names
                                    .get(v.index())
                                    .cloned()
                                    .unwrap_or_else(|| v.to_string()),
                            ))
                        }
                    }
                }
            }
        }
        Ok(ConjunctiveQuery {
            atoms,
            var_kinds,
            var_names,
        })
    }

    /// Returns a copy of the query with a different set of atoms but the same
    /// variable table.  Intended for algorithms (folding, dissection) that
    /// drop or alter atoms; the caller must ensure every surviving variable
    /// still occurs in the body.
    pub(crate) fn with_atoms_unchecked(&self, atoms: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery {
            atoms,
            var_kinds: self.var_kinds.clone(),
            var_names: self.var_names.clone(),
        }
    }
}

/// Pretty-printer returned by [`ConjunctiveQuery::display_with`].
pub struct QueryDisplay<'a> {
    query: &'a ConjunctiveQuery,
    catalog: &'a Catalog,
    head_name: &'a str,
}

impl fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = self.query;
        write!(f, "{}(", self.head_name)?;
        for (i, v) in q.head_vars().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", q.var_name(*v))?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in q.atoms().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}",
                atom.display_with(self.catalog, |v| q.var_name(v).to_owned())
            )?;
        }
        Ok(())
    }
}

/// Argument passed to [`QueryBuilder::atom`]: a previously declared variable
/// or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// A variable declared with [`QueryBuilder::dvar`] or [`QueryBuilder::evar`].
    Var(VarId),
    /// A constant value.
    Const(Constant),
}

impl From<VarId> for Arg {
    fn from(v: VarId) -> Self {
        Arg::Var(v)
    }
}

impl From<Constant> for Arg {
    fn from(c: Constant) -> Self {
        Arg::Const(c)
    }
}

impl From<&str> for Arg {
    fn from(s: &str) -> Self {
        Arg::Const(Constant::str(s))
    }
}

impl From<i64> for Arg {
    fn from(i: i64) -> Self {
        Arg::Const(Constant::int(i))
    }
}

/// Incremental builder for [`ConjunctiveQuery`] values.
///
/// # Example
///
/// ```
/// use fdc_cq::{Catalog, query::QueryBuilder};
///
/// let catalog = Catalog::paper_example();
/// let meetings = catalog.resolve("Meetings").unwrap();
/// let contacts = catalog.resolve("Contacts").unwrap();
///
/// // Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')
/// let mut b = QueryBuilder::new();
/// let x = b.dvar("x");
/// let y = b.evar("y");
/// let w = b.evar("w");
/// b.atom(meetings, [x.into(), y.into()]);
/// b.atom(contacts, [y.into(), w.into(), "Intern".into()]);
/// let q2 = b.build().unwrap();
///
/// assert_eq!(q2.num_atoms(), 2);
/// assert_eq!(q2.display_with(&catalog).to_string(),
///            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
/// ```
#[derive(Debug, Default, Clone)]
pub struct QueryBuilder {
    atoms: Vec<Atom>,
    var_kinds: Vec<VarKind>,
    var_names: Vec<String>,
    names_index: HashMap<String, VarId>,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn declare(&mut self, name: &str, kind: VarKind) -> VarId {
        if let Some(&existing) = self.names_index.get(name) {
            // Re-declaring with the same kind returns the same variable; a
            // conflicting re-declaration is reported at build() time by
            // recording the stricter (distinguished) kind mismatch lazily.
            // We keep the original kind; build() validation relies on atom
            // tags so a caller who mixes kinds for one name will get a
            // ConflictingVariableKind error.
            return existing;
        }
        let id = VarId(self.var_kinds.len() as u32);
        self.var_kinds.push(kind);
        self.var_names.push(name.to_owned());
        self.names_index.insert(name.to_owned(), id);
        id
    }

    /// Declares (or returns the existing) distinguished variable `name`.
    pub fn dvar(&mut self, name: &str) -> VarId {
        self.declare(name, VarKind::Distinguished)
    }

    /// Declares (or returns the existing) existential variable `name`.
    pub fn evar(&mut self, name: &str) -> VarId {
        self.declare(name, VarKind::Existential)
    }

    /// Returns the kind currently recorded for a variable.
    pub fn kind_of(&self, v: VarId) -> VarKind {
        self.var_kinds[v.index()]
    }

    /// Appends a body atom.
    pub fn atom<I>(&mut self, relation: RelId, args: I) -> &mut Self
    where
        I: IntoIterator<Item = Arg>,
    {
        let terms = args
            .into_iter()
            .map(|arg| match arg {
                Arg::Var(v) => Term::Var(v, self.var_kinds[v.index()]),
                Arg::Const(c) => Term::Const(c),
            })
            .collect();
        self.atoms.push(Atom::new(relation, terms));
        self
    }

    /// Finalizes the query.
    pub fn build(self) -> Result<ConjunctiveQuery> {
        ConjunctiveQuery::from_parts(self.atoms, self.var_kinds, self.var_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    #[test]
    fn builder_constructs_paper_query_q1() {
        // Q1(x) :- Meetings(x, 'Cathy')
        let c = catalog();
        let m = c.resolve("Meetings").unwrap();
        let mut b = QueryBuilder::new();
        let x = b.dvar("x");
        b.atom(m, [x.into(), "Cathy".into()]);
        let q1 = b.build().unwrap();
        assert_eq!(q1.num_atoms(), 1);
        assert_eq!(q1.num_vars(), 1);
        assert!(q1.is_single_atom());
        assert!(!q1.is_boolean());
        assert_eq!(q1.var_kind(x), VarKind::Distinguished);
        assert_eq!(
            q1.display_with(&c).to_string(),
            "Q(x) :- Meetings(x, 'Cathy')"
        );
        assert_eq!(
            q1.display_named(&c, "Q1").to_string(),
            "Q1(x) :- Meetings(x, 'Cathy')"
        );
        assert!(q1.validate(&c).is_ok());
    }

    #[test]
    fn builder_reuses_variables_by_name() {
        let c = catalog();
        let m = c.resolve("Meetings").unwrap();
        let mut b = QueryBuilder::new();
        let x1 = b.dvar("x");
        let x2 = b.dvar("x");
        assert_eq!(x1, x2);
        b.atom(m, [x1.into(), x2.into()]);
        let q = b.build().unwrap();
        assert_eq!(q.num_vars(), 1);
        assert!(q.atoms()[0].has_repeated_vars());
    }

    #[test]
    fn empty_body_is_rejected() {
        let b = QueryBuilder::new();
        assert_eq!(b.build().unwrap_err(), CqError::EmptyBody);
        assert_eq!(
            ConjunctiveQuery::from_atoms(vec![]).unwrap_err(),
            CqError::EmptyBody
        );
    }

    #[test]
    fn unused_variable_is_rejected() {
        let c = catalog();
        let m = c.resolve("Meetings").unwrap();
        let mut b = QueryBuilder::new();
        let x = b.dvar("x");
        let _unused = b.dvar("ghost");
        b.atom(m, [x.into(), x.into()]);
        let err = b.build().unwrap_err();
        assert_eq!(err, CqError::UnsafeHeadVariable("ghost".into()));
    }

    #[test]
    fn conflicting_kinds_are_rejected() {
        let c = catalog();
        let m = c.resolve("Meetings").unwrap();
        // Construct atoms manually with inconsistent tags for VarId(0).
        let atoms = vec![
            Atom::new(m, vec![Term::dist(0), Term::exist(1)]),
            Atom::new(m, vec![Term::exist(0), Term::exist(1)]),
        ];
        let err = ConjunctiveQuery::from_atoms(atoms).unwrap_err();
        assert!(matches!(err, CqError::ConflictingVariableKind(_)));
    }

    #[test]
    fn from_atoms_infers_kinds_and_names() {
        let c = catalog();
        let m = c.resolve("Meetings").unwrap();
        let q =
            ConjunctiveQuery::from_atoms(vec![Atom::new(m, vec![Term::dist(0), Term::exist(1)])])
                .unwrap();
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.var_kind(VarId(0)), VarKind::Distinguished);
        assert_eq!(q.var_kind(VarId(1)), VarKind::Existential);
        assert_eq!(q.var_name(VarId(0)), "x0");
        assert_eq!(q.display_with(&c).to_string(), "Q(x0) :- Meetings(x0, x1)");
    }

    #[test]
    fn variable_iterators_and_counts() {
        let c = catalog();
        let m = c.resolve("Meetings").unwrap();
        let k = c.resolve("Contacts").unwrap();
        // Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')
        let mut b = QueryBuilder::new();
        let x = b.dvar("x");
        let y = b.evar("y");
        let w = b.evar("w");
        b.atom(m, [x.into(), y.into()]);
        b.atom(k, [y.into(), w.into(), "Intern".into()]);
        let q = b.build().unwrap();

        assert_eq!(q.distinguished_vars().collect::<Vec<_>>(), vec![x]);
        assert_eq!(q.existential_vars().collect::<Vec<_>>(), vec![y, w]);
        assert_eq!(q.relations_used(), vec![m, k]);
        // x occurs in 1 atom, y in 2 (it is the join variable), w in 1.
        assert_eq!(q.atoms_per_variable(), vec![1, 2, 1]);
        assert_eq!(q.head_vars(), vec![x]);
        assert!(!q.is_boolean());
        assert!(!q.is_single_atom());
    }

    #[test]
    fn boolean_query_detection() {
        let c = catalog();
        let m = c.resolve("Meetings").unwrap();
        let mut b = QueryBuilder::new();
        let x = b.evar("x");
        let y = b.evar("y");
        b.atom(m, [x.into(), y.into()]);
        let v5 = b.build().unwrap();
        assert!(v5.is_boolean());
        assert_eq!(v5.display_with(&c).to_string(), "Q() :- Meetings(x, y)");
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let c = catalog();
        let m = c.resolve("Meetings").unwrap();
        let mut b = QueryBuilder::new();
        let x = b.dvar("x");
        b.atom(m, [x.into()]);
        let q = b.build().unwrap();
        assert!(matches!(q.validate(&c), Err(CqError::ArityMismatch { .. })));
    }

    #[test]
    fn arg_conversions() {
        assert_eq!(Arg::from(VarId(1)), Arg::Var(VarId(1)));
        assert_eq!(Arg::from("a"), Arg::Const(Constant::str("a")));
        assert_eq!(Arg::from(7i64), Arg::Const(Constant::int(7)));
        assert_eq!(Arg::from(Constant::int(3)), Arg::Const(Constant::int(3)));
    }
}
