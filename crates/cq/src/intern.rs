//! The interned query plane: a flat, arena-backed representation of
//! conjunctive queries with dense [`QueryId`]s.
//!
//! Every hot path of the disclosure-control stack — cached labeling, the
//! service's admission loop, the benchmark workloads — repeatedly moves the
//! *same* query shapes around.  The boxed [`ConjunctiveQuery`] representation
//! (`Vec<Atom>` of `Vec<Term>` with owned variable names) is convenient to
//! build and display but expensive to hash, compare and cache: a single
//! canonical-key lookup allocates one vector per atom.
//!
//! [`QueryInterner`] fixes the representation the way `PolicyArena` fixed it
//! for compiled policies: queries are **alpha-renamed to a canonical form**
//! (variables renumbered by first occurrence in the body, exactly like the
//! numbering of [`canonical`](crate::canonical)'s keys) and **interned
//! into one flat arena** — a single term buffer ([`ITerm`] is one `Copy`
//! word), a single atom-span table ([`IAtom`]), a single variable-kind
//! buffer, and a constant table shared across all queries.  Interning hands
//! out dense `u32` [`QueryId`]s:
//!
//! * two alpha-equivalent queries (identical up to variable renaming) intern
//!   to the **same** id — `QueryId` equality *is* the canonical-key
//!   comparison, for free;
//! * structurally distinct queries get distinct ids;
//! * ids are dense, so caches keyed by query collapse from hash maps to
//!   plain indexed vectors.
//!
//! [`QueryInterner::resolve`] returns a [`QueryRef`] — a zero-copy view of
//! the flat representation that the reasoning algorithms
//! ([`homomorphism`](crate::homomorphism), [`containment`](crate::containment),
//! [`folding`](crate::folding), [`rewriting`](crate::rewriting)) operate on
//! directly, without materializing `Vec<Atom>` again.
//!
//! Interning is deliberately **syntactic** (like the canonical keys it
//! replaces): semantically equivalent queries with reordered atoms intern to
//! different ids and simply occupy two cache slots.  Semantic comparisons
//! remain the job of [`containment`](crate::containment).
//!
//! # Who owns the interner?
//!
//! One interner per serving stack: `fdc_core::CachedLabeler` owns a shared
//! handle and `fdc_service::DisclosureService` exposes it, so queries are
//! interned once at the front door and every layer below trades in
//! `QueryId`s.  Ids from one interner are meaningless to another.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::catalog::RelId;
use crate::error::Result;
use crate::query::ConjunctiveQuery;
use crate::structure::{EarStep, ShapeClass};
use crate::term::{Constant, Term, VarId, VarKind};

/// Dense identifier of an interned query.
///
/// Ids are handed out consecutively from 0 by one [`QueryInterner`]; two
/// queries receive the same id **iff** they are structurally identical up to
/// variable renaming (same atoms in the same order, same constants, same
/// variable-equality pattern, same distinguished/existential tags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The id as a `usize`, convenient for indexing slot tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an interned constant within one [`QueryInterner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(pub u32);

impl ConstId {
    /// The id as a `usize`, convenient for indexing the constant table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One term of the flat representation: a canonical variable (index +
/// distinguished/existential tag) or an interned constant.
///
/// `ITerm` is a single `Copy` word, so term buffers pack densely and
/// substitutions during homomorphism search are plain array writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ITerm {
    /// A variable, identified by its canonical (first-occurrence) index.
    Var(u32, VarKind),
    /// A constant, identified by its id in the interner's constant table.
    Const(ConstId),
}

impl ITerm {
    /// The canonical variable index, if the term is a variable.
    #[inline]
    pub fn var_index(self) -> Option<u32> {
        match self {
            ITerm::Var(v, _) => Some(v),
            ITerm::Const(_) => None,
        }
    }

    /// True if the term is a constant.
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, ITerm::Const(_))
    }

    /// True if the term is a distinguished variable.
    #[inline]
    pub fn is_distinguished(self) -> bool {
        matches!(self, ITerm::Var(_, VarKind::Distinguished))
    }

    /// A stable 64-bit code for hashing (variables by index and kind,
    /// constants by interned id).
    #[inline]
    fn code(self) -> u64 {
        match self {
            ITerm::Var(v, VarKind::Distinguished) => 0x1_0000_0000 | u64::from(v),
            ITerm::Var(v, VarKind::Existential) => 0x2_0000_0000 | u64::from(v),
            ITerm::Const(c) => 0x3_0000_0000 | u64::from(c.0),
        }
    }
}

/// One atom of the flat representation: a relation plus a span into a term
/// buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IAtom {
    /// The atom's base relation.
    pub relation: RelId,
    /// Start of the atom's terms within the owning term buffer.
    pub term_start: u32,
    /// Number of terms (the atom's arity).
    pub term_len: u32,
}

impl IAtom {
    /// The atom's arity.
    #[inline]
    pub fn arity(self) -> usize {
        self.term_len as usize
    }

    /// The atom's terms within `terms` (the buffer the atom's spans index
    /// into — the arena buffer for interned atoms, a local buffer for
    /// temporaries).
    #[inline]
    pub fn terms(self, terms: &[ITerm]) -> &[ITerm] {
        &terms[self.term_start as usize..(self.term_start + self.term_len) as usize]
    }
}

/// A zero-copy view of one query in the flat representation.
///
/// `atoms` is the query's atom-span slice, `terms` the buffer those spans
/// index into, and `kinds` the per-variable tags (indexed by canonical
/// variable index).  Interned queries borrow all three from the arena
/// ([`QueryInterner::resolve`]); algorithms may also assemble temporary
/// `QueryRef`s over local buffers (e.g. the expansion built by
/// [`rewriting::interned_rewritable_from_single`](crate::rewriting::interned_rewritable_from_single)).
#[derive(Debug, Clone, Copy)]
pub struct QueryRef<'a> {
    /// The query's body atoms (spans into `terms`).
    pub atoms: &'a [IAtom],
    /// The term buffer the atom spans index into.
    pub terms: &'a [ITerm],
    /// Variable kinds, indexed by canonical variable index.
    pub kinds: &'a [VarKind],
    /// The query's GYO ear ordering (join tree) when it is known to be
    /// acyclic — attached by [`QueryInterner::resolve`] from the structural
    /// side table, `None` for cyclic queries and for temporary views
    /// assembled over local buffers.  Homomorphism dispatch
    /// ([`interned_homomorphism_into`](crate::homomorphism::interned_homomorphism_into))
    /// takes the semi-join fast path exactly when this is present.
    pub ears: Option<&'a [EarStep]>,
}

impl<'a> QueryRef<'a> {
    /// Number of body atoms.
    #[inline]
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// True if the query has a single body atom.
    #[inline]
    pub fn is_single_atom(&self) -> bool {
        self.atoms.len() == 1
    }

    /// The terms of the `i`-th atom.
    #[inline]
    pub fn atom_terms(&self, i: usize) -> &'a [ITerm] {
        self.atoms[i].terms(self.terms)
    }

    /// The relation of the `i`-th atom.
    #[inline]
    pub fn relation(&self, i: usize) -> RelId {
        self.atoms[i].relation
    }

    /// The kind of a variable by canonical index.
    #[inline]
    pub fn var_kind(&self, v: u32) -> VarKind {
        self.kinds[v as usize]
    }
}

/// Span of one interned query within the arena buffers.
#[derive(Debug, Clone, Copy)]
struct QuerySpan {
    atom_start: u32,
    atom_len: u32,
    kind_start: u32,
    num_vars: u32,
}

/// Structural facts about one interned query, derived once when the query
/// enters the arena (and rebuilt on decode): its [`ShapeClass`], the span of
/// its GYO ear ordering within the `ears` arena, the span of its
/// per-relation atom counts within the `rel_counts` arena, and the span of
/// its lazily computed fold (core) within the `fold_atoms` arena.
#[derive(Debug, Clone, Copy)]
struct ShapeInfo {
    class: ShapeClass,
    ear_start: u32,
    ear_len: u32,
    rel_start: u32,
    rel_len: u32,
    fold_start: u32,
    fold_len: u32,
    fold_cached: bool,
}

/// The canonical form of a query, staged in scratch buffers before the
/// dedup check (and appended to the arena only if genuinely new).
struct CanonParts {
    /// Per atom: relation and arity (terms are laid out consecutively).
    atoms: Vec<(RelId, u32)>,
    terms: Vec<ITerm>,
    kinds: Vec<VarKind>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_step(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(FNV_PRIME)
}

impl CanonParts {
    fn hash(&self) -> u64 {
        let mut h = fnv_step(FNV_OFFSET, self.atoms.len() as u64);
        let mut offset = 0usize;
        for &(relation, len) in &self.atoms {
            h = fnv_step(h, u64::from(relation.0));
            h = fnv_step(h, u64::from(len));
            for term in &self.terms[offset..offset + len as usize] {
                h = fnv_step(h, term.code());
            }
            offset += len as usize;
        }
        h
    }
}

/// Canonicalizes a [`ConjunctiveQuery`] into scratch buffers: variables are
/// renumbered by first occurrence in the body, constants resolved through
/// `const_id`.  Returns `None` if a constant cannot be resolved (a lookup
/// against an interner that has never seen it — the query cannot be interned
/// there, so it is certainly absent).
fn canonical_parts(
    query: &ConjunctiveQuery,
    mut const_id: impl FnMut(&Constant) -> Option<ConstId>,
) -> Option<CanonParts> {
    const UNASSIGNED: u32 = u32::MAX;
    let mut numbering = vec![UNASSIGNED; query.num_vars()];
    let mut parts = CanonParts {
        atoms: Vec::with_capacity(query.num_atoms()),
        terms: Vec::new(),
        kinds: Vec::with_capacity(query.num_vars()),
    };
    for atom in query.atoms() {
        parts.atoms.push((atom.relation, atom.arity() as u32));
        for term in &atom.terms {
            let interned = match term {
                Term::Var(v, kind) => {
                    let slot = &mut numbering[v.index()];
                    if *slot == UNASSIGNED {
                        *slot = parts.kinds.len() as u32;
                        parts.kinds.push(*kind);
                    }
                    ITerm::Var(*slot, *kind)
                }
                Term::Const(c) => ITerm::Const(const_id(c)?),
            };
            parts.terms.push(interned);
        }
    }
    Some(parts)
}

/// The interning arena for conjunctive queries.
///
/// See the [module documentation](self) for the representation and the
/// canonicalization contract.  The interner only ever grows; `QueryId`s and
/// [`QueryRef`]s therefore stay valid for its whole lifetime.
#[derive(Debug, Default)]
pub struct QueryInterner {
    terms: Vec<ITerm>,
    atoms: Vec<IAtom>,
    kinds: Vec<VarKind>,
    queries: Vec<QuerySpan>,
    consts: Vec<Constant>,
    const_ids: HashMap<Constant, ConstId>,
    /// Canonical-hash buckets for deduplication.  Collisions are resolved by
    /// a structural comparison against the arena.
    dedup: HashMap<u64, Vec<QueryId>>,
    /// Dense ordinal of each **single-atom** query within the single-atom
    /// sub-space (`u32::MAX` for multi-atom queries), indexed by `QueryId`.
    /// Lets id-keyed per-atom tables stay proportional to the number of
    /// distinct atoms instead of the whole arena; see
    /// [`single_atom_ordinal`](Self::single_atom_ordinal).
    atom_ordinals: Vec<u32>,
    /// Number of single-atom queries interned so far (= the exclusive upper
    /// bound of the ordinal space).
    num_single_atom: u32,
    /// Structural side table, indexed by `QueryId`: shape class plus spans
    /// into the `ears`, `rel_counts` and `fold_atoms` arenas below.
    shapes: Vec<ShapeInfo>,
    /// Arena of GYO ear orderings (join trees) of the acyclic queries.
    ears: Vec<EarStep>,
    /// Arena of per-relation atom counts, sorted by relation id per query.
    rel_counts: Vec<(RelId, u32)>,
    /// Arena of fold (core) results: indices of the surviving atoms, filled
    /// lazily by [`core_atom_indices`](Self::core_atom_indices).
    fold_atoms: Vec<u32>,
    /// Number of queries classified [`ShapeClass::Acyclic`].
    num_acyclic: u32,
}

impl QueryInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        QueryInterner::default()
    }

    /// Number of interned queries (= the exclusive upper bound of the dense
    /// id space).
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// True if `id` was issued by this interner.
    pub fn contains(&self, id: QueryId) -> bool {
        id.index() < self.queries.len()
    }

    /// Total number of terms in the arena (a capacity/footprint metric).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The dense ordinal of a **single-atom** query within the single-atom
    /// sub-space (`None` for multi-atom queries).
    ///
    /// Ordinals are handed out consecutively from 0 as single-atom queries
    /// are interned, so a table indexed by ordinal — e.g. the labeler's
    /// per-atom `ℓ⁺` cache over the ids `dissect_interned` emits — stays
    /// proportional to the number of distinct atoms, not to the whole
    /// arena's id space.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    #[inline]
    pub fn single_atom_ordinal(&self, id: QueryId) -> Option<u32> {
        let ordinal = self.atom_ordinals[id.index()];
        (ordinal != u32::MAX).then_some(ordinal)
    }

    /// Number of single-atom queries interned so far (the exclusive upper
    /// bound of the [`single_atom_ordinal`](Self::single_atom_ordinal)
    /// space).
    pub fn num_single_atom_queries(&self) -> usize {
        self.num_single_atom as usize
    }

    /// The constant behind an interned [`ConstId`].
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    pub fn constant(&self, id: ConstId) -> &Constant {
        &self.consts[id.index()]
    }

    fn const_id_mut(&mut self, c: &Constant) -> ConstId {
        if let Some(&id) = self.const_ids.get(c) {
            return id;
        }
        let id = ConstId(self.consts.len() as u32);
        self.consts.push(c.clone());
        self.const_ids.insert(c.clone(), id);
        id
    }

    /// True if the canonical form staged in `parts` equals interned query
    /// `id`.
    fn matches(&self, id: QueryId, parts: &CanonParts) -> bool {
        let span = self.queries[id.index()];
        if span.atom_len as usize != parts.atoms.len()
            || span.num_vars as usize != parts.kinds.len()
        {
            return false;
        }
        let atoms =
            &self.atoms[span.atom_start as usize..(span.atom_start + span.atom_len) as usize];
        let mut offset = 0usize;
        for (atom, &(relation, len)) in atoms.iter().zip(&parts.atoms) {
            if atom.relation != relation || atom.term_len != len {
                return false;
            }
            if atom.terms(&self.terms) != &parts.terms[offset..offset + len as usize] {
                return false;
            }
            offset += len as usize;
        }
        true
    }

    /// Appends a staged canonical form to the arena and indexes it.
    fn append(&mut self, parts: CanonParts, hash: u64) -> QueryId {
        let id = QueryId(self.queries.len() as u32);
        let atom_start = self.atoms.len() as u32;
        let kind_start = self.kinds.len() as u32;
        let mut term_start = self.terms.len() as u32;
        self.terms.extend_from_slice(&parts.terms);
        for (relation, len) in parts.atoms {
            self.atoms.push(IAtom {
                relation,
                term_start,
                term_len: len,
            });
            term_start += len;
        }
        self.kinds.extend_from_slice(&parts.kinds);
        let atom_len = self.atoms.len() as u32 - atom_start;
        self.queries.push(QuerySpan {
            atom_start,
            atom_len,
            kind_start,
            num_vars: parts.kinds.len() as u32,
        });
        self.atom_ordinals.push(if atom_len == 1 {
            let ordinal = self.num_single_atom;
            self.num_single_atom += 1;
            ordinal
        } else {
            u32::MAX
        });
        self.dedup.entry(hash).or_default().push(id);
        self.classify(id.index());
        id
    }

    /// Derives the structural side-table entry of query `index` — shape
    /// class via GYO reduction, the ear ordering for acyclic shapes, and the
    /// per-relation atom counts.  Called once per query, right after its
    /// span is appended (and again per query on decode); the fold span
    /// starts empty and is filled lazily.
    fn classify(&mut self, index: usize) {
        debug_assert_eq!(self.shapes.len(), index, "classification is in id order");
        let span = self.queries[index];
        let query = QueryRef {
            atoms: &self.atoms
                [span.atom_start as usize..(span.atom_start + span.atom_len) as usize],
            terms: &self.terms,
            kinds: &self.kinds
                [span.kind_start as usize..(span.kind_start + span.num_vars) as usize],
            ears: None,
        };
        let mut rels: Vec<(RelId, u32)> = Vec::new();
        for atom in query.atoms {
            match rels.iter_mut().find(|(r, _)| *r == atom.relation) {
                Some(entry) => entry.1 += 1,
                None => rels.push((atom.relation, 1)),
            }
        }
        rels.sort_unstable_by_key(|&(relation, _)| relation);
        let (class, steps) = match crate::structure::gyo_reduce(query) {
            Some(steps) => (ShapeClass::Acyclic, steps),
            None => (ShapeClass::Cyclic, Vec::new()),
        };
        if class == ShapeClass::Acyclic {
            self.num_acyclic += 1;
        }
        let ear_start = self.ears.len() as u32;
        let ear_len = steps.len() as u32;
        self.ears.extend(steps);
        let rel_start = self.rel_counts.len() as u32;
        let rel_len = rels.len() as u32;
        self.rel_counts.extend(rels);
        self.shapes.push(ShapeInfo {
            class,
            ear_start,
            ear_len,
            rel_start,
            rel_len,
            fold_start: 0,
            fold_len: 0,
            fold_cached: false,
        });
    }

    fn find(&self, parts: &CanonParts, hash: u64) -> Option<QueryId> {
        self.dedup
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| self.matches(id, parts))
    }

    /// Interns a query, returning its dense id.
    ///
    /// The query is alpha-renamed to canonical form first, so alpha-
    /// equivalent queries share one id (and one copy of the flat
    /// representation).
    pub fn intern(&mut self, query: &ConjunctiveQuery) -> QueryId {
        let parts = canonical_parts(query, |c| Some(self.const_id_mut(c)))
            .expect("infallible constant interning");
        let hash = parts.hash();
        match self.find(&parts, hash) {
            Some(id) => id,
            None => self.append(parts, hash),
        }
    }

    /// Looks a query up without interning it.
    ///
    /// Returns the id the query *would* intern to, or `None` if its
    /// canonical form (or any of its constants) has never been interned.
    pub fn lookup(&self, query: &ConjunctiveQuery) -> Option<QueryId> {
        let parts = canonical_parts(query, |c| self.const_ids.get(c).copied())?;
        self.find(&parts, parts.hash())
    }

    /// Interns a single-atom query given directly in the flat representation
    /// — the entry point for `Dissect`, whose output atoms are assembled
    /// from an already-resolved [`QueryRef`].
    ///
    /// `terms` may use any dense variable numbering (it is re-canonicalized
    /// here); its constants must be ids of **this** interner.  `kinds[v]` is
    /// the kind of variable `v` under the input numbering.
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable outside `kinds` or a constant
    /// not issued by this interner.
    pub fn intern_single_atom(
        &mut self,
        relation: RelId,
        terms: &[ITerm],
        kinds: &[VarKind],
    ) -> QueryId {
        const UNASSIGNED: u32 = u32::MAX;
        let mut numbering = vec![UNASSIGNED; kinds.len()];
        let mut parts = CanonParts {
            atoms: vec![(relation, terms.len() as u32)],
            terms: Vec::with_capacity(terms.len()),
            kinds: Vec::with_capacity(kinds.len()),
        };
        for term in terms {
            let interned = match *term {
                ITerm::Var(v, kind) => {
                    let slot = &mut numbering[v as usize];
                    if *slot == UNASSIGNED {
                        *slot = parts.kinds.len() as u32;
                        parts.kinds.push(kinds[v as usize]);
                    }
                    debug_assert_eq!(kinds[v as usize], kind, "term tag disagrees with kinds[]");
                    ITerm::Var(*slot, kind)
                }
                ITerm::Const(c) => {
                    assert!(c.index() < self.consts.len(), "foreign constant id");
                    ITerm::Const(c)
                }
            };
            parts.terms.push(interned);
        }
        let hash = parts.hash();
        match self.find(&parts, hash) {
            Some(id) => id,
            None => self.append(parts, hash),
        }
    }

    /// Resolves an id to its zero-copy [`QueryRef`] view.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    #[inline]
    pub fn resolve(&self, id: QueryId) -> QueryRef<'_> {
        let span = self.queries[id.index()];
        let shape = self.shapes[id.index()];
        QueryRef {
            atoms: &self.atoms
                [span.atom_start as usize..(span.atom_start + span.atom_len) as usize],
            terms: &self.terms,
            kinds: &self.kinds
                [span.kind_start as usize..(span.kind_start + span.num_vars) as usize],
            ears: (shape.class == ShapeClass::Acyclic).then(|| {
                &self.ears[shape.ear_start as usize..(shape.ear_start + shape.ear_len) as usize]
            }),
        }
    }

    /// The structural class of interned query `id`, decided by GYO
    /// reduction when the query entered the arena.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    #[inline]
    pub fn shape_class(&self, id: QueryId) -> ShapeClass {
        self.shapes[id.index()].class
    }

    /// The GYO ear ordering (join tree, children-first) of an acyclic
    /// query, `None` if the query is cyclic.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    pub fn ear_steps(&self, id: QueryId) -> Option<&[EarStep]> {
        let shape = self.shapes[id.index()];
        (shape.class == ShapeClass::Acyclic).then(|| {
            &self.ears[shape.ear_start as usize..(shape.ear_start + shape.ear_len) as usize]
        })
    }

    /// Number of interned queries classified [`ShapeClass::Acyclic`].
    pub fn num_acyclic_queries(&self) -> usize {
        self.num_acyclic as usize
    }

    /// Per-relation atom counts of query `id`, sorted by relation id — the
    /// profile folding's sibling pre-check and capacity planning consult
    /// without rescanning the atom list.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    pub fn relation_profile(&self, id: QueryId) -> &[(RelId, u32)] {
        let shape = self.shapes[id.index()];
        &self.rel_counts[shape.rel_start as usize..(shape.rel_start + shape.rel_len) as usize]
    }

    /// Indices of the atoms surviving folding — the query's core, in
    /// original atom order.
    ///
    /// The fold (NP-hard in general) runs on the **first** request for each
    /// query and is replayed from the side table on every later one, so
    /// repeated dissections of one shape pay the search exactly once per
    /// interner lifetime.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    pub fn core_atom_indices(&mut self, id: QueryId) -> &[u32] {
        if !self.shapes[id.index()].fold_cached {
            let kept = crate::folding::fold_interned_indices(self.resolve(id));
            let fold_start = self.fold_atoms.len() as u32;
            let fold_len = kept.len() as u32;
            self.fold_atoms.extend(kept);
            let shape = &mut self.shapes[id.index()];
            shape.fold_start = fold_start;
            shape.fold_len = fold_len;
            shape.fold_cached = true;
        }
        let shape = self.shapes[id.index()];
        &self.fold_atoms[shape.fold_start as usize..(shape.fold_start + shape.fold_len) as usize]
    }

    /// Number of atoms in the query's core (its fold result) — computes and
    /// caches the fold on first use, like
    /// [`core_atom_indices`](Self::core_atom_indices).
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    pub fn core_size(&mut self, id: QueryId) -> usize {
        self.core_atom_indices(id).len()
    }

    /// Reconstructs an interned query as a boxed [`ConjunctiveQuery`].
    ///
    /// Variable names are synthesized (`x0`, `x1`, …) — interning keeps the
    /// structure, not the display names — so the result is extensionally
    /// equal to (and structurally identical with) every query that interned
    /// to `id`, but not `Eq`-identical to inputs with custom names.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this interner.
    pub fn to_query(&self, id: QueryId) -> ConjunctiveQuery {
        self.try_to_query(id).expect("interned queries are valid")
    }

    /// The canonical hash of interned query `id`, computed straight from
    /// the arena spans — the same value [`CanonParts::hash`] produced
    /// when the query was first staged (used to rebuild the dedup index
    /// after [`decode_from`](Self::decode_from)).
    fn hash_interned(&self, id: QueryId) -> u64 {
        let span = self.queries[id.index()];
        let atoms =
            &self.atoms[span.atom_start as usize..(span.atom_start + span.atom_len) as usize];
        let mut h = fnv_step(FNV_OFFSET, atoms.len() as u64);
        for atom in atoms {
            h = fnv_step(h, u64::from(atom.relation.0));
            h = fnv_step(h, u64::from(atom.term_len));
            for term in atom.terms(&self.terms) {
                h = fnv_step(h, term.code());
            }
        }
        h
    }

    /// Serializes the whole arena — constants, term buffer, atom spans,
    /// kind buffer, query spans — into `out` (the `fdc-cq` slice of a
    /// checkpoint).  The derived indexes (constant lookup, dedup
    /// buckets, single-atom ordinals, the structural side table) are *not*
    /// written; decoding rebuilds them, so the format stays minimal and
    /// cannot go out of sync with itself.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use fdc_durability::codec::{put_len, put_u32, put_u8};
        put_len(out, self.consts.len());
        for constant in &self.consts {
            crate::wire::put_constant(out, constant);
        }
        put_len(out, self.terms.len());
        for term in &self.terms {
            match *term {
                ITerm::Var(v, VarKind::Distinguished) => {
                    put_u8(out, 0);
                    put_u32(out, v);
                }
                ITerm::Var(v, VarKind::Existential) => {
                    put_u8(out, 1);
                    put_u32(out, v);
                }
                ITerm::Const(c) => {
                    put_u8(out, 2);
                    put_u32(out, c.0);
                }
            }
        }
        put_len(out, self.atoms.len());
        for atom in &self.atoms {
            put_u32(out, atom.relation.0);
            put_u32(out, atom.term_start);
            put_u32(out, atom.term_len);
        }
        put_len(out, self.kinds.len());
        for kind in &self.kinds {
            crate::wire::put_var_kind(out, *kind);
        }
        put_len(out, self.queries.len());
        for span in &self.queries {
            put_u32(out, span.atom_start);
            put_u32(out, span.atom_len);
            put_u32(out, span.kind_start);
            put_u32(out, span.num_vars);
        }
    }

    /// Deserializes an arena written by [`encode_into`](Self::encode_into),
    /// rebuilding every derived index (constant lookup, dedup buckets,
    /// single-atom ordinals, structural classification).  All spans are
    /// bounds-checked, so a
    /// corrupt checkpoint yields a [`CodecError`], never a panicking
    /// interner.  Query ids issued before the encode resolve to the
    /// identical flat representation after the decode — the property
    /// that keeps `QueryId`s stable across restarts.
    ///
    /// [`CodecError`]: fdc_durability::codec::CodecError
    pub fn decode_from(
        cursor: &mut fdc_durability::codec::Cursor<'_>,
    ) -> std::result::Result<Self, fdc_durability::codec::CodecError> {
        use fdc_durability::codec::CodecError;
        let num_consts = cursor.count(2)?;
        let mut consts = Vec::with_capacity(num_consts);
        let mut const_ids = HashMap::with_capacity(num_consts);
        for _ in 0..num_consts {
            let at = cursor.pos();
            let constant = crate::wire::read_constant(cursor)?;
            let id = ConstId(consts.len() as u32);
            if const_ids.insert(constant.clone(), id).is_some() {
                return Err(CodecError::invalid(at, "duplicate constant in table"));
            }
            consts.push(constant);
        }
        let num_terms = cursor.count(5)?;
        let mut terms = Vec::with_capacity(num_terms);
        for _ in 0..num_terms {
            let at = cursor.pos();
            let tag = cursor.u8()?;
            let value = cursor.u32()?;
            terms.push(match tag {
                0 => ITerm::Var(value, VarKind::Distinguished),
                1 => ITerm::Var(value, VarKind::Existential),
                2 => {
                    if value as usize >= consts.len() {
                        return Err(CodecError::invalid(at, "constant id out of range"));
                    }
                    ITerm::Const(ConstId(value))
                }
                _ => return Err(CodecError::invalid(at, format!("unknown term tag {tag}"))),
            });
        }
        let num_atoms = cursor.count(12)?;
        let mut atoms = Vec::with_capacity(num_atoms);
        for _ in 0..num_atoms {
            let at = cursor.pos();
            let atom = IAtom {
                relation: RelId(cursor.u32()?),
                term_start: cursor.u32()?,
                term_len: cursor.u32()?,
            };
            if atom.term_start as u64 + atom.term_len as u64 > terms.len() as u64 {
                return Err(CodecError::invalid(at, "atom term span out of range"));
            }
            atoms.push(atom);
        }
        let num_kinds = cursor.count(1)?;
        let mut kinds = Vec::with_capacity(num_kinds);
        for _ in 0..num_kinds {
            kinds.push(crate::wire::read_var_kind(cursor)?);
        }
        let num_queries = cursor.count(16)?;
        let mut queries = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let at = cursor.pos();
            let span = QuerySpan {
                atom_start: cursor.u32()?,
                atom_len: cursor.u32()?,
                kind_start: cursor.u32()?,
                num_vars: cursor.u32()?,
            };
            if span.atom_start as u64 + span.atom_len as u64 > atoms.len() as u64
                || span.kind_start as u64 + span.num_vars as u64 > kinds.len() as u64
            {
                return Err(CodecError::invalid(at, "query span out of range"));
            }
            queries.push(span);
        }
        let mut interner = QueryInterner {
            terms,
            atoms,
            kinds,
            queries,
            consts,
            const_ids,
            dedup: HashMap::new(),
            atom_ordinals: Vec::with_capacity(num_queries),
            num_single_atom: 0,
            shapes: Vec::with_capacity(num_queries),
            ears: Vec::new(),
            rel_counts: Vec::new(),
            fold_atoms: Vec::new(),
            num_acyclic: 0,
        };
        for index in 0..interner.queries.len() {
            let id = QueryId(index as u32);
            let hash = interner.hash_interned(id);
            interner.dedup.entry(hash).or_default().push(id);
            let single = interner.queries[index].atom_len == 1;
            interner.atom_ordinals.push(if single {
                let ordinal = interner.num_single_atom;
                interner.num_single_atom += 1;
                ordinal
            } else {
                u32::MAX
            });
            // The structural side table is derived state: rebuild it rather
            // than serialize it, like the dedup buckets and ordinals above.
            interner.classify(index);
        }
        Ok(interner)
    }

    fn try_to_query(&self, id: QueryId) -> Result<ConjunctiveQuery> {
        let q = self.resolve(id);
        let atoms: Vec<Atom> = (0..q.num_atoms())
            .map(|i| {
                let terms = q
                    .atom_terms(i)
                    .iter()
                    .map(|term| match *term {
                        ITerm::Var(v, kind) => Term::Var(VarId(v), kind),
                        ITerm::Const(c) => Term::Const(self.consts[c.index()].clone()),
                    })
                    .collect();
                Atom::new(q.relation(i), terms)
            })
            .collect();
        let names = (0..q.num_vars()).map(|i| format!("x{i}")).collect();
        ConjunctiveQuery::from_parts(atoms, q.kinds.to_vec(), names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::structurally_identical;
    use crate::catalog::Catalog;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    #[test]
    fn alpha_equivalent_queries_intern_to_one_id() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let a = interner.intern(&q(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')"));
        let b = interner.intern(&q(&c, "Q(p) :- Meetings(p, r), Contacts(r, s, 'Intern')"));
        assert_eq!(a, b);
        assert_eq!(interner.len(), 1);
        // Interning is idempotent.
        assert_eq!(
            interner.intern(&q(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')")),
            a
        );
    }

    #[test]
    fn structurally_distinct_queries_get_distinct_ids() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q() :- Meetings(z, z)",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, 'Bob')",
            "Q() :- Meetings(x, y), Contacts(p, r, s)",
            "Q() :- Contacts(p, r, s), Meetings(x, y)",
        ];
        let ids: Vec<QueryId> = texts.iter().map(|t| interner.intern(&q(&c, t))).collect();
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                assert_eq!(a == b, i == j, "{} vs {}", texts[i], texts[j]);
            }
        }
        assert_eq!(interner.len(), texts.len());
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern(&q(&c, "Q(x) :- Meetings(x, y)"));
        let b = interner.intern(&q(&c, "Q(x, y) :- Meetings(x, y)"));
        assert_eq!((a, b), (QueryId(0), QueryId(1)));
        assert!(interner.contains(a) && interner.contains(b));
        assert!(!interner.contains(QueryId(2)));
        assert!(interner.num_terms() >= 4);

        let aref = interner.resolve(a);
        assert_eq!(aref.num_atoms(), 1);
        assert_eq!(aref.num_vars(), 2);
        assert!(aref.is_single_atom());
        assert_eq!(aref.var_kind(0), VarKind::Distinguished);
        assert_eq!(aref.var_kind(1), VarKind::Existential);
        assert_eq!(aref.atom_terms(0).len(), 2);
        assert_eq!(aref.relation(0), catalog().resolve("Meetings").unwrap());
    }

    #[test]
    fn lookup_never_interns() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let query = q(&c, "Q(x) :- Meetings(x, 'Cathy')");
        assert_eq!(interner.lookup(&query), None);
        assert_eq!(interner.len(), 0);
        let id = interner.intern(&query);
        assert_eq!(interner.lookup(&query), Some(id));
        // Alpha variant hits the same id; unknown constants miss cheaply.
        assert_eq!(
            interner.lookup(&q(&c, "Q(a) :- Meetings(a, 'Cathy')")),
            Some(id)
        );
        assert_eq!(interner.lookup(&q(&c, "Q(x) :- Meetings(x, 'Jim')")), None);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn to_query_reconstructs_the_canonical_form() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        for text in [
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q() :- Meetings(z, z)",
            "Q(x) :- Meetings(x, 9)",
            "Q(a, b, e) :- Contacts(a, b, e)",
        ] {
            let query = q(&c, text);
            let id = interner.intern(&query);
            let back = interner.to_query(id);
            assert!(
                structurally_identical(&query, &back),
                "round trip changed {text}: got {back:?}"
            );
            assert!(crate::containment::equivalent(&query, &back));
            assert!(back.validate(&c).is_ok());
        }
    }

    #[test]
    fn constants_are_shared_across_queries() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let a = interner.intern(&q(&c, "Q(x) :- Meetings(x, 'Cathy')"));
        let b = interner.intern(&q(&c, "Q() :- Meetings(y, 'Cathy')"));
        assert_ne!(a, b);
        let ca = interner.resolve(a).atom_terms(0)[1];
        let cb = interner.resolve(b).atom_terms(0)[1];
        assert_eq!(ca, cb);
        let ITerm::Const(id) = ca else {
            panic!("expected a constant term");
        };
        assert_eq!(interner.constant(id), &Constant::str("Cathy"));
    }

    #[test]
    fn single_atom_ordinals_are_dense_within_their_subspace() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let s0 = interner.intern(&q(&c, "Q(x) :- Meetings(x, y)"));
        let m0 = interner.intern(&q(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')"));
        let s1 = interner.intern(&q(&c, "Q(x, y) :- Meetings(x, y)"));
        let s2 = interner.intern(&q(&c, "Q(a, b, e) :- Contacts(a, b, e)"));
        assert_eq!(interner.single_atom_ordinal(s0), Some(0));
        assert_eq!(interner.single_atom_ordinal(m0), None);
        assert_eq!(interner.single_atom_ordinal(s1), Some(1));
        assert_eq!(interner.single_atom_ordinal(s2), Some(2));
        assert_eq!(interner.num_single_atom_queries(), 3);
        // Re-interning does not burn ordinals.
        interner.intern(&q(&c, "Q(p, r) :- Meetings(p, r)"));
        assert_eq!(interner.num_single_atom_queries(), 3);
    }

    #[test]
    fn encode_decode_round_trips_ids_and_dedup() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q() :- Meetings(z, z)",
            "Q(a) :- Meetings(a, 9)",
        ];
        let ids: Vec<QueryId> = texts.iter().map(|t| interner.intern(&q(&c, t))).collect();
        let mut bytes = Vec::new();
        interner.encode_into(&mut bytes);
        let mut cursor = fdc_durability::codec::Cursor::new(&bytes);
        let mut back = QueryInterner::decode_from(&mut cursor).unwrap();
        cursor.expect_end().unwrap();
        assert_eq!(back.len(), interner.len());
        assert_eq!(
            back.num_single_atom_queries(),
            interner.num_single_atom_queries()
        );
        for (text, &id) in texts.iter().zip(&ids) {
            // Lookups land on the original ids (the dedup index is back)...
            assert_eq!(back.lookup(&q(&c, text)), Some(id), "{text}");
            // ...re-interning mints nothing new...
            assert_eq!(back.intern(&q(&c, text)), id, "{text}");
            // ...and the flat representation is identical.
            assert!(structurally_identical(
                &interner.to_query(id),
                &back.to_query(id)
            ));
            assert_eq!(
                back.single_atom_ordinal(id),
                interner.single_atom_ordinal(id)
            );
        }
        assert_eq!(back.len(), texts.len());
        // The decoded interner keeps growing normally.
        let fresh = back.intern(&q(&c, "Q(p, r) :- Meetings(p, r)"));
        assert_eq!(fresh.index(), texts.len());
    }

    #[test]
    fn decode_rejects_truncation_and_corrupt_spans() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        interner.intern(&q(&c, "Q(x) :- Meetings(x, 'Cathy')"));
        let mut bytes = Vec::new();
        interner.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            let mut cursor = fdc_durability::codec::Cursor::new(&bytes[..cut]);
            assert!(
                QueryInterner::decode_from(&mut cursor).is_err(),
                "cut {cut}"
            );
        }
        // Corrupt the final query span's num_vars field out of range.
        let len = bytes.len();
        bytes[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = fdc_durability::codec::Cursor::new(&bytes);
        assert!(QueryInterner::decode_from(&mut cursor).is_err());
    }

    #[test]
    fn intern_single_atom_agrees_with_intern() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let query = q(&c, "Q(x) :- Meetings(x, y)");
        let id = interner.intern(&query);
        // Re-intern the same atom from its resolved flat form, with a
        // permuted (non-canonical) variable numbering.
        let meetings = c.resolve("Meetings").unwrap();
        let terms = [
            ITerm::Var(1, VarKind::Distinguished),
            ITerm::Var(0, VarKind::Existential),
        ];
        let kinds = [VarKind::Existential, VarKind::Distinguished];
        let again = interner.intern_single_atom(meetings, &terms, &kinds);
        assert_eq!(again, id);
        assert_eq!(interner.len(), 1);
    }
}
