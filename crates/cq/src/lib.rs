//! Conjunctive-query substrate for fine-grained disclosure control.
//!
//! This crate implements the query-language machinery that the disclosure
//! labeling framework of Bender, Kot, Gehrke and Koch (*Fine-Grained
//! Disclosure Control for App Ecosystems*, SIGMOD 2013) is built on:
//!
//! * [`Catalog`] — a relational schema (relation names, attribute names).
//! * [`Term`], [`Atom`], [`ConjunctiveQuery`] — the paper's representation of
//!   conjunctive queries as a list of body atoms whose variables are tagged
//!   *distinguished* or *existential* (Section 5 of the paper).
//! * [`parse_query`](parser::parse_query) — a small datalog-style parser for
//!   the notation used throughout the paper, e.g.
//!   `Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')`.
//! * [`homomorphism`] / [`containment`] — containment mappings between
//!   conjunctive queries (Chandra–Merlin), query equivalence.
//! * [`folding`] — query folding / core computation, used by the `Dissect`
//!   labeling algorithm.
//! * [`rewriting`] — equivalent view rewriting checks for single-atom views,
//!   the concrete disclosure order used by the paper's labelers.
//! * [`intern`] — the interned query plane: an arena-backed flat CQ
//!   representation with dense [`QueryId`]s and a zero-copy [`QueryRef`]
//!   view that the reasoning algorithms above also operate on directly.
//! * [`structure`] — structural classification at intern time: GYO
//!   reduction decides α-acyclicity once per shape, and acyclic queries
//!   answer homomorphism questions with a polynomial semi-join pass over
//!   their join tree instead of backtracking.
//!
//! The crate has no dependencies and is deliberately self-contained so that
//! the labeling layer (`fdc-core`) and the policy layer (`fdc-policy`) can be
//! tested and benchmarked without a SQL engine.
//!
//! # Quick example
//!
//! ```
//! use fdc_cq::{Catalog, parser::parse_query, rewriting::rewritable_from_single};
//!
//! let mut catalog = Catalog::new();
//! catalog.add_relation("Meetings", &["time", "person"]).unwrap();
//!
//! let v1 = parse_query(&catalog, "V1(x, y) :- Meetings(x, y)").unwrap();
//! let v2 = parse_query(&catalog, "V2(x) :- Meetings(x, y)").unwrap();
//!
//! // The projection V2 can be answered from the full view V1 ...
//! assert!(rewritable_from_single(&v2, &v1));
//! // ... but not the other way around.
//! assert!(!rewritable_from_single(&v1, &v2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod canonical;
pub mod catalog;
pub mod containment;
pub mod database;
pub mod error;
pub mod folding;
pub mod homomorphism;
pub mod intern;
pub mod parser;
pub mod query;
pub mod rewriting;
pub mod structure;
pub mod substitution;
pub mod term;
pub mod wire;

pub use atom::Atom;
pub use catalog::{Catalog, RelId, RelationSchema};
pub use database::{evaluate, Database};
pub use error::{CqError, Result};
pub use intern::{QueryId, QueryInterner, QueryRef};
pub use query::ConjunctiveQuery;
pub use term::{Constant, Term, VarId, VarKind};
