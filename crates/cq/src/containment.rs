//! Containment and equivalence of conjunctive queries.
//!
//! Built directly on the homomorphism search of
//! [`homomorphism`](crate::homomorphism) via the Chandra–Merlin theorem:
//! `Q1 ⊆ Q2` (every answer of `Q1` is an answer of `Q2` on every database)
//! holds exactly when there is a containment mapping from `Q2` to `Q1`.
//!
//! Two flavours are provided, matching the two head disciplines of the tagged
//! representation:
//!
//! * the `*_same_space` functions assume both queries share one variable
//!   space (e.g. one was derived from the other) and require homomorphisms to
//!   fix distinguished variables — this is classical containment;
//! * [`equivalent`] compares two independent queries *up to head
//!   permutation*, the notion of information equivalence used by the paper
//!   when it treats `V1(x, y) :- M(x, y)` and `V1'(y, x) :- M(x, y)` as
//!   revealing the same information (Section 3.1).

use crate::homomorphism::{homomorphism_exists, interned_homomorphism_exists, HeadPolicy};
use crate::intern::QueryRef;
use crate::query::ConjunctiveQuery;

/// Classical containment `q1 ⊆ q2` for queries sharing a variable space.
///
/// Requires a homomorphism from `q2` to `q1` that fixes distinguished
/// variables.
pub fn contained_in_same_space(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    homomorphism_exists(q2, q1, HeadPolicy::Identity)
}

/// Classical equivalence for queries sharing a variable space.
pub fn equivalent_same_space(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    contained_in_same_space(q1, q2) && contained_in_same_space(q2, q1)
}

/// Information containment up to head permutation: there is a homomorphism
/// from `q2` to `q1` mapping distinguished variables to distinguished
/// variables.
///
/// For queries with the same head arity this coincides with classical
/// containment up to a renaming of the head; it is the right comparison for
/// the tagged (head-less) representation of Section 5.
pub fn contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    homomorphism_exists(q2, q1, HeadPolicy::DistinguishedToDistinguished)
}

/// Information equivalence up to head permutation (both-way containment).
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    contained_in(q1, q2) && contained_in(q2, q1)
}

/// True if the boolean *body* of `q1` is at least as restrictive as `q2`'s,
/// ignoring all head information (plain body homomorphism from `q2` to `q1`).
pub fn body_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    homomorphism_exists(q2, q1, HeadPolicy::Free)
}

// ---------------------------------------------------------------------------
// The same comparisons over the interned flat representation.
// ---------------------------------------------------------------------------

/// [`contained_in_same_space`] over interned [`QueryRef`]s (both from one
/// interner, sharing a variable space).
pub fn interned_contained_in_same_space(q1: QueryRef<'_>, q2: QueryRef<'_>) -> bool {
    interned_homomorphism_exists(q2, q1, HeadPolicy::Identity)
}

/// [`equivalent_same_space`] over interned [`QueryRef`]s.
pub fn interned_equivalent_same_space(q1: QueryRef<'_>, q2: QueryRef<'_>) -> bool {
    interned_contained_in_same_space(q1, q2) && interned_contained_in_same_space(q2, q1)
}

/// [`contained_in`] (information containment up to head permutation) over
/// interned [`QueryRef`]s.
pub fn interned_contained_in(q1: QueryRef<'_>, q2: QueryRef<'_>) -> bool {
    interned_homomorphism_exists(q2, q1, HeadPolicy::DistinguishedToDistinguished)
}

/// [`equivalent`] (information equivalence up to head permutation) over
/// interned [`QueryRef`]s.
pub fn interned_equivalent(q1: QueryRef<'_>, q2: QueryRef<'_>) -> bool {
    interned_contained_in(q1, q2) && interned_contained_in(q2, q1)
}

/// [`interned_contained_in`] restricted to the generic backtracking search,
/// bypassing the semi-join fast path — the baseline the structural property
/// suite compares dispatch against.
pub fn interned_contained_in_generic(q1: QueryRef<'_>, q2: QueryRef<'_>) -> bool {
    crate::homomorphism::interned_homomorphism_exists_generic(
        q2,
        q1,
        HeadPolicy::DistinguishedToDistinguished,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    #[test]
    fn selection_is_contained_in_projection() {
        let c = catalog();
        // Q1(x) :- Meetings(x, 'Cathy') returns a subset of V2(x) :- Meetings(x, y).
        let q1 = parse_query(&c, "Q1(x) :- Meetings(x, 'Cathy')").unwrap();
        let v2 = parse_query(&c, "V2(x) :- Meetings(x, y)").unwrap();
        assert!(contained_in(&q1, &v2));
        assert!(!contained_in(&v2, &q1));
        assert!(!equivalent(&q1, &v2));
    }

    #[test]
    fn adding_a_redundant_atom_preserves_equivalence() {
        let c = catalog();
        let q = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        let redundant = parse_query(&c, "Q(x) :- Meetings(x, y), Meetings(x, z)").unwrap();
        assert!(equivalent(&q, &redundant));
        assert!(contained_in(&q, &redundant));
        assert!(contained_in(&redundant, &q));
    }

    #[test]
    fn joining_restricts_the_answer() {
        let c = catalog();
        let v2 = parse_query(&c, "V2(x) :- Meetings(x, y)").unwrap();
        let q2 = parse_query(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        assert!(contained_in(&q2, &v2));
        assert!(!contained_in(&v2, &q2));
    }

    #[test]
    fn head_permutation_does_not_matter_for_equivalent() {
        let c = catalog();
        // The paper's V1 and V1' example: same information, different head order.
        let v1 = parse_query(&c, "V1(x, y) :- Meetings(x, y)").unwrap();
        let v1p = parse_query(&c, "V1p(y, x) :- Meetings(x, y)").unwrap();
        assert!(equivalent(&v1, &v1p));
    }

    #[test]
    fn projection_columns_are_not_equivalent() {
        let c = catalog();
        let v2 = parse_query(&c, "V2(x) :- Meetings(x, y)").unwrap();
        let v4 = parse_query(&c, "V4(y) :- Meetings(x, y)").unwrap();
        // Both are single-column projections of Meetings, but of different
        // columns: under the tagged representation they are *incomparable*
        // (for information purposes; see the disclosure lattice of Figure 3).
        //
        // Note: `contained_in` works up to head permutation, and a
        // permutation maps one projection onto the other only if the body
        // also matches; here the distinguished variable occupies different
        // columns, so no containment mapping exists in either direction.
        assert!(!equivalent(&v2, &v4));
    }

    #[test]
    fn boolean_query_is_contained_in_everything_over_same_relation() {
        let c = catalog();
        let v5 = parse_query(&c, "V5() :- Meetings(x, y)").unwrap();
        let v1 = parse_query(&c, "V1(x, y) :- Meetings(x, y)").unwrap();
        // Boolean nonemptiness check: as a query its only "answer" is the
        // empty tuple, which exists whenever V1 has any answer at all.
        // Body containment captures that; head-aware containment treats the
        // arities as different so it is not equivalence.
        assert!(body_contained_in(&v1, &v5));
        assert!(!equivalent(&v5, &v1));
    }

    #[test]
    fn same_space_containment_distinguishes_head_positions() {
        let c = catalog();
        let q_first = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        let q_second = parse_query(&c, "Q(y) :- Meetings(x, y)").unwrap();
        // Sharing the variable-id space by construction (both parsed with
        // first body occurrence order), these two are different queries.
        assert!(!equivalent_same_space(&q_first, &q_second));
        assert!(equivalent_same_space(&q_first, &q_first));
        assert!(contained_in_same_space(&q_first, &q_first));
    }

    #[test]
    fn constants_make_queries_incomparable_when_they_differ() {
        let c = catalog();
        let cathy = parse_query(&c, "Q(x) :- Meetings(x, 'Cathy')").unwrap();
        let bob = parse_query(&c, "Q(x) :- Meetings(x, 'Bob')").unwrap();
        assert!(!contained_in(&cathy, &bob));
        assert!(!contained_in(&bob, &cathy));
    }
}
