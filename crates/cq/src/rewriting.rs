//! Equivalent view rewriting for single-atom views.
//!
//! The paper's concrete disclosure order (Section 3.1) is *equivalent view
//! rewriting*: `W1 ⪯ W2` when every view in `W1` has an equivalent rewriting
//! in terms of the views in `W2`.  Its labeling algorithms (Sections 5 and 6)
//! only ever need the check for a **single-atom query against a single-atom
//! security view**, because multi-atom queries are first dissected into
//! single atoms and the optimized labeler computes
//! `ℓ⁺({V}) = {Vi ∈ Fgen : {V} ⪯ {Vi}}` one security view at a time.
//!
//! [`rewritable_from_single`] implements that check exactly:
//!
//! 1. Both queries must reference the same relation.
//! 2. A candidate rewriting that uses the view **once** is built
//!    positionally: every position where the view exposes a distinguished
//!    variable is forced to the query's term at that position; positions the
//!    view projects away are unconstrained; constant positions of the view
//!    must agree with the query.
//! 3. The candidate's *expansion* is compared to the query for classical
//!    equivalence (homomorphisms in both directions fixing distinguished
//!    variables).
//!
//! For single-atom queries and views, a rewriting that uses the view more
//! than once can always be folded down to a single use (its expansion is a
//! set of atoms over one relation whose core must be the query's single
//! atom), so checking the one-use candidate is complete.  A single-atom
//! query is also never rewritable from a *combination* of single-atom views
//! when it is not rewritable from one of them — intersecting or joining
//! lossy projections of the same relation cannot reconstruct information
//! that none of them retains (this is the Figure 3 observation that
//! `⇓{V2, V4}` sits strictly below `⇓{V1}`).  These two facts let the
//! labeling layer treat [`rewritable_from_single`] as its only oracle.

use crate::atom::Atom;
use crate::containment::{equivalent_same_space, interned_equivalent_same_space};
use crate::intern::{IAtom, ITerm, QueryRef};
use crate::query::ConjunctiveQuery;
use crate::term::{Term, VarId, VarKind};

/// Can the single-atom query `query` be answered by an equivalent rewriting
/// in terms of the single-atom view `view`?
///
/// Returns `false` (never panics) if either input has more than one body
/// atom; multi-atom inputs should go through `Dissect` first.
///
/// # Example
///
/// ```
/// use fdc_cq::{Catalog, parser::parse_query, rewriting::rewritable_from_single};
///
/// let catalog = Catalog::paper_example();
/// let v1 = parse_query(&catalog, "V1(x, y) :- Meetings(x, y)").unwrap();
/// let v2 = parse_query(&catalog, "V2(x) :- Meetings(x, y)").unwrap();
/// let q1 = parse_query(&catalog, "Q1(x) :- Meetings(x, 'Cathy')").unwrap();
///
/// assert!(rewritable_from_single(&q1, &v1));  // select from the full view
/// assert!(!rewritable_from_single(&q1, &v2)); // the time-only view is not enough
/// ```
pub fn rewritable_from_single(query: &ConjunctiveQuery, view: &ConjunctiveQuery) -> bool {
    if !query.is_single_atom() || !view.is_single_atom() {
        return false;
    }
    let q_atom = &query.atoms()[0];
    let v_atom = &view.atoms()[0];
    if q_atom.relation != v_atom.relation || q_atom.arity() != v_atom.arity() {
        return false;
    }

    // Step 1: build the positional assignment θ from the view's distinguished
    // variables to terms of the query, and fail fast on positions the view
    // cannot reproduce.
    let mut theta: Vec<Option<Term>> = vec![None; view.num_vars()];
    for (v_term, q_term) in v_atom.terms.iter().zip(q_atom.terms.iter()) {
        match v_term {
            Term::Var(v, VarKind::Distinguished) => match &theta[v.index()] {
                Some(existing) if existing != q_term => return false,
                Some(_) => {}
                None => theta[v.index()] = Some(q_term.clone()),
            },
            Term::Var(_, VarKind::Existential) => {
                // Projected away by the view; no constraint here.  If the
                // query needs this position (e.g. exposes it), the expansion
                // equivalence check below will fail.
            }
            Term::Const(c) => {
                // The view pre-selects this constant.  The query must select
                // the same constant, otherwise the rewriting either
                // contradicts the query (different constant) or is more
                // restrictive than it (variable in the query).
                if q_term.as_const() != Some(c) {
                    return false;
                }
            }
        }
    }

    // Step 2: every distinguished variable of the query must be exposed by
    // the view at some position (otherwise the rewriting would be unsafe).
    for q_var in query.distinguished_vars() {
        let exposed = v_atom
            .terms
            .iter()
            .zip(q_atom.terms.iter())
            .any(|(v_term, q_term)| {
                v_term.var_kind() == Some(VarKind::Distinguished) && q_term.var_id() == Some(q_var)
            });
        if !exposed {
            return false;
        }
    }

    // Step 3: build the expansion of the one-use candidate rewriting and
    // check classical equivalence with the query in the query's variable
    // space (extended with fresh existential variables for the positions the
    // view projects away).
    let mut num_vars = query.num_vars();
    let mut var_kinds: Vec<VarKind> = query.var_kinds().to_vec();
    let mut var_names: Vec<String> = (0..num_vars)
        .map(|i| query.var_name(VarId(i as u32)).to_owned())
        .collect();

    // Existential variables of the view are renamed to fresh existential
    // variables of the expansion -- one fresh variable per *view variable*
    // (not per position), so that repeated existential variables such as the
    // body of `V15() :- M(z, z)` keep their equality constraint.
    let mut fresh_for_view_var: Vec<Option<VarId>> = vec![None; view.num_vars()];
    let mut expansion_terms: Vec<Term> = Vec::with_capacity(v_atom.arity());
    for v_term in &v_atom.terms {
        match v_term {
            Term::Var(v, VarKind::Distinguished) => {
                let bound = theta[v.index()]
                    .clone()
                    .expect("distinguished view variables occur in the view body");
                expansion_terms.push(bound);
            }
            Term::Var(v, VarKind::Existential) => {
                let fresh = *fresh_for_view_var[v.index()].get_or_insert_with(|| {
                    let id = VarId(num_vars as u32);
                    num_vars += 1;
                    var_kinds.push(VarKind::Existential);
                    var_names.push(format!("_fresh{}", id.0));
                    id
                });
                expansion_terms.push(Term::Var(fresh, VarKind::Existential));
            }
            Term::Const(c) => expansion_terms.push(Term::Const(c.clone())),
        }
    }

    let expansion_atom = Atom::new(q_atom.relation, expansion_terms);
    let Ok(expansion) =
        ConjunctiveQuery::from_parts_allowing_unused(vec![expansion_atom], var_kinds, var_names)
    else {
        // The expansion failed validation (e.g. a distinguished variable of
        // the query does not occur in it); then no rewriting exists.
        return false;
    };

    equivalent_same_space(&expansion, query)
}

/// [`rewritable_from_single`] over the interned flat representation.
///
/// `query` and `view` must resolve against the same
/// [`QueryInterner`](crate::intern::QueryInterner) (constants are compared
/// by interned id).  The candidate rewriting's expansion is assembled in two
/// small local buffers and checked with the interned same-space equivalence
/// — no boxed query is ever materialized, which is what makes this the
/// fallback path of the interned labeler's per-atom `ℓ⁺` step.
pub fn interned_rewritable_from_single(query: QueryRef<'_>, view: QueryRef<'_>) -> bool {
    if !query.is_single_atom() || !view.is_single_atom() {
        return false;
    }
    let q_atom = query.atoms[0];
    let v_atom = view.atoms[0];
    if q_atom.relation != v_atom.relation || q_atom.term_len != v_atom.term_len {
        return false;
    }
    let q_terms = query.atom_terms(0);
    let v_terms = view.atom_terms(0);

    // Step 1: positional assignment θ from the view's distinguished
    // variables to query terms; fail fast on irreproducible positions.
    let mut theta: Vec<Option<ITerm>> = vec![None; view.num_vars()];
    for (v_term, q_term) in v_terms.iter().zip(q_terms.iter()) {
        match *v_term {
            ITerm::Var(v, VarKind::Distinguished) => match theta[v as usize] {
                Some(existing) if existing != *q_term => return false,
                Some(_) => {}
                None => theta[v as usize] = Some(*q_term),
            },
            ITerm::Var(_, VarKind::Existential) => {}
            ITerm::Const(c) => {
                if *q_term != ITerm::Const(c) {
                    return false;
                }
            }
        }
    }

    // Step 2: every distinguished variable of the query must be exposed by
    // the view at some position.
    for (q_var, kind) in query.kinds.iter().enumerate() {
        if !kind.is_distinguished() {
            continue;
        }
        let exposed = v_terms.iter().zip(q_terms.iter()).any(|(v_term, q_term)| {
            v_term.is_distinguished() && q_term.var_index() == Some(q_var as u32)
        });
        if !exposed {
            return false;
        }
    }

    // Step 3: the expansion of the one-use candidate, in the query's
    // variable space extended with fresh existential variables for the
    // positions the view projects away.
    let mut kinds: Vec<VarKind> = query.kinds.to_vec();
    let mut fresh_for_view_var: Vec<Option<u32>> = vec![None; view.num_vars()];
    let mut terms: Vec<ITerm> = Vec::with_capacity(v_terms.len());
    for v_term in v_terms {
        match *v_term {
            ITerm::Var(v, VarKind::Distinguished) => {
                let bound =
                    theta[v as usize].expect("distinguished view variables occur in the view body");
                terms.push(bound);
            }
            ITerm::Var(v, VarKind::Existential) => {
                let fresh = *fresh_for_view_var[v as usize].get_or_insert_with(|| {
                    kinds.push(VarKind::Existential);
                    (kinds.len() - 1) as u32
                });
                terms.push(ITerm::Var(fresh, VarKind::Existential));
            }
            ITerm::Const(c) => terms.push(ITerm::Const(c)),
        }
    }
    let expansion_atom = IAtom {
        relation: q_atom.relation,
        term_start: 0,
        term_len: terms.len() as u32,
    };
    let expansion = QueryRef {
        atoms: std::slice::from_ref(&expansion_atom),
        terms: &terms,
        kinds: &kinds,
        // A temporary over local buffers: no structural certificate, so
        // homomorphisms *from* the expansion use the generic search (the
        // direction from the interned query still takes its fast path).
        ears: None,
    };
    interned_equivalent_same_space(expansion, query)
}

/// Can the single-atom query be rewritten using *some* view in `views`?
///
/// See the module documentation for why, for single-atom queries and
/// single-atom views, per-view checks are sufficient.
pub fn rewritable_from_any<'a, I>(query: &ConjunctiveQuery, views: I) -> bool
where
    I: IntoIterator<Item = &'a ConjunctiveQuery>,
{
    views
        .into_iter()
        .any(|view| rewritable_from_single(query, view))
}

/// The set-of-views comparison of the equivalent view rewriting order for
/// single-atom views: `w1 ⪯ w2` iff every view of `w1` is rewritable from
/// some view of `w2`.
pub fn set_rewritable(w1: &[ConjunctiveQuery], w2: &[ConjunctiveQuery]) -> bool {
    w1.iter().all(|v| rewritable_from_any(v, w2.iter()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    #[test]
    fn projections_are_rewritable_from_the_full_view() {
        let c = catalog();
        let v1 = q(&c, "V1(x, y) :- Meetings(x, y)");
        let v2 = q(&c, "V2(x) :- Meetings(x, y)");
        let v4 = q(&c, "V4(y) :- Meetings(x, y)");
        let v5 = q(&c, "V5() :- Meetings(x, y)");

        assert!(rewritable_from_single(&v2, &v1));
        assert!(rewritable_from_single(&v4, &v1));
        assert!(rewritable_from_single(&v5, &v1));
        assert!(rewritable_from_single(&v1, &v1));

        // Lossy projections cannot reproduce the full view or each other.
        assert!(!rewritable_from_single(&v1, &v2));
        assert!(!rewritable_from_single(&v1, &v4));
        assert!(!rewritable_from_single(&v2, &v4));
        assert!(!rewritable_from_single(&v4, &v2));

        // Both projections reveal nonemptiness.
        assert!(rewritable_from_single(&v5, &v2));
        assert!(rewritable_from_single(&v5, &v4));
        // But nonemptiness alone reveals neither projection.
        assert!(!rewritable_from_single(&v2, &v5));
        assert!(!rewritable_from_single(&v4, &v5));
    }

    #[test]
    fn selections_need_the_selected_column() {
        let c = catalog();
        let v1 = q(&c, "V1(x, y) :- Meetings(x, y)");
        let v2 = q(&c, "V2(x) :- Meetings(x, y)");
        let q1 = q(&c, "Q1(x) :- Meetings(x, 'Cathy')");

        // Figure 1: the label of Q1 is {V1}.
        assert!(rewritable_from_single(&q1, &v1));
        assert!(!rewritable_from_single(&q1, &v2));
    }

    #[test]
    fn cross_relation_rewriting_is_impossible() {
        let c = catalog();
        let v3 = q(&c, "V3(x, y, z) :- Contacts(x, y, z)");
        let v2 = q(&c, "V2(x) :- Meetings(x, y)");
        assert!(!rewritable_from_single(&v2, &v3));
        assert!(!rewritable_from_single(&v3, &v2));
    }

    #[test]
    fn constants_in_the_view_restrict_what_it_can_answer() {
        let c = catalog();
        let cathy_view = q(&c, "Vc(x) :- Meetings(x, 'Cathy')");
        let any_view = q(&c, "V2(x) :- Meetings(x, y)");
        let cathy_query = q(&c, "Q(x) :- Meetings(x, 'Cathy')");
        let bob_query = q(&c, "Q(x) :- Meetings(x, 'Bob')");
        let all_query = q(&c, "Q(x) :- Meetings(x, y)");

        // The selection view answers exactly its own selection.
        assert!(rewritable_from_single(&cathy_query, &cathy_view));
        assert!(!rewritable_from_single(&bob_query, &cathy_view));
        assert!(!rewritable_from_single(&all_query, &cathy_view));
        // A selection is answerable from the unrestricted projection of the
        // same columns only if the selected column is exposed.
        assert!(!rewritable_from_single(&cathy_query, &any_view));
    }

    #[test]
    fn example_5_1_boolean_views_are_incomparable() {
        let c = catalog();
        let v13 = q(&c, "V13() :- Meetings(9, 'Jim')");
        let v14 = q(&c, "V14() :- Meetings(x, y)");
        // Knowing whether a specific tuple is present does not tell you
        // whether the relation is nonempty ... wait, it does in one
        // direction? No: V13 true implies V14 true, but equivalence requires
        // both directions, so neither is an equivalent rewriting of the other.
        assert!(!rewritable_from_single(&v14, &v13));
        assert!(!rewritable_from_single(&v13, &v14));
    }

    #[test]
    fn example_5_3_diagonal_versus_unrestricted() {
        let c = catalog();
        let v14 = q(&c, "V14() :- Meetings(x, y)");
        let v15 = q(&c, "V15() :- Meetings(z, z)");
        assert!(!rewritable_from_single(&v14, &v15));
        assert!(!rewritable_from_single(&v15, &v14));
    }

    #[test]
    fn repeated_distinguished_view_variables() {
        let c = catalog();
        // The diagonal view exposes elements x with (x, x) in Meetings.
        let diag = q(&c, "Vd(x) :- Meetings(x, x)");
        let diag_query = q(&c, "Q(x) :- Meetings(x, x)");
        let full_query = q(&c, "Q(x, y) :- Meetings(x, y)");
        assert!(rewritable_from_single(&diag_query, &diag));
        assert!(!rewritable_from_single(&full_query, &diag));
        // And the diagonal query is answerable from the full view.
        let v1 = q(&c, "V1(x, y) :- Meetings(x, y)");
        assert!(rewritable_from_single(&diag_query, &v1));
    }

    #[test]
    fn boolean_diagonal_from_full_view() {
        let c = catalog();
        let v1 = q(&c, "V1(x, y) :- Meetings(x, y)");
        let v15 = q(&c, "V15() :- Meetings(z, z)");
        // Q'() :- V1(z, z) is an equivalent rewriting.
        assert!(rewritable_from_single(&v15, &v1));
    }

    #[test]
    fn contacts_projections_match_figure_4_expectations() {
        let c = catalog();
        let v3 = q(&c, "V3(x, y, z) :- Contacts(x, y, z)");
        let v6 = q(&c, "V6(x, y) :- Contacts(x, y, z)");
        let v7 = q(&c, "V7(x, z) :- Contacts(x, y, z)");
        let v8 = q(&c, "V8(y, z) :- Contacts(x, y, z)");
        let v9 = q(&c, "V9(x) :- Contacts(x, y, z)");
        let v10 = q(&c, "V10(y) :- Contacts(x, y, z)");
        let v11 = q(&c, "V11(z) :- Contacts(x, y, z)");
        let v12 = q(&c, "V12() :- Contacts(x, y, z)");

        // Every projection is answerable from the full view.
        for v in [&v6, &v7, &v8, &v9, &v10, &v11, &v12] {
            assert!(rewritable_from_single(v, &v3));
        }
        // Single-column projections are answerable from the two-column
        // projections that retain the column.
        assert!(rewritable_from_single(&v9, &v6));
        assert!(rewritable_from_single(&v9, &v7));
        assert!(!rewritable_from_single(&v9, &v8));
        assert!(rewritable_from_single(&v10, &v6));
        assert!(rewritable_from_single(&v10, &v8));
        assert!(!rewritable_from_single(&v10, &v7));
        assert!(rewritable_from_single(&v11, &v7));
        assert!(rewritable_from_single(&v11, &v8));
        assert!(!rewritable_from_single(&v11, &v6));
        // The boolean view is answerable from everything.
        for v in [&v3, &v6, &v7, &v8, &v9, &v10, &v11] {
            assert!(rewritable_from_single(&v12, v));
        }
        // Two-column projections are not answerable from single columns.
        assert!(!rewritable_from_single(&v6, &v9));
        assert!(!rewritable_from_single(&v6, &v10));
    }

    #[test]
    fn set_level_comparisons() {
        let c = catalog();
        let v1 = q(&c, "V1(x, y) :- Meetings(x, y)");
        let v2 = q(&c, "V2(x) :- Meetings(x, y)");
        let v4 = q(&c, "V4(y) :- Meetings(x, y)");
        let v5 = q(&c, "V5() :- Meetings(x, y)");

        // {V2, V4} ⪯ {V1} but {V1} ⪯̸ {V2, V4}: the projections cannot be
        // recombined into the full relation.
        assert!(set_rewritable(
            &[v2.clone(), v4.clone()],
            std::slice::from_ref(&v1)
        ));
        assert!(!set_rewritable(
            std::slice::from_ref(&v1),
            &[v2.clone(), v4.clone()]
        ));
        // {V5} ⪯ {V2} and {V5} ⪯ {V4}.
        assert!(set_rewritable(
            std::slice::from_ref(&v5),
            std::slice::from_ref(&v2)
        ));
        assert!(set_rewritable(
            std::slice::from_ref(&v5),
            std::slice::from_ref(&v4)
        ));
        // The empty set is below everything.
        assert!(set_rewritable(&[], std::slice::from_ref(&v5)));
        assert!(rewritable_from_any(&v5, [&v2, &v4]));
        assert!(!rewritable_from_any(&v1, [&v2, &v4]));
    }

    #[test]
    fn multi_atom_inputs_are_rejected() {
        let c = catalog();
        let multi = q(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let v1 = q(&c, "V1(x, y) :- Meetings(x, y)");
        assert!(!rewritable_from_single(&multi, &v1));
        assert!(!rewritable_from_single(&v1, &multi));
    }

    #[test]
    fn interned_rewriting_check_agrees_with_the_boxed_one() {
        use crate::intern::QueryInterner;
        let c = catalog();
        // Every single-atom shape from the tests above, queries and views
        // alike — the check is symmetric in representation, so compare all
        // ordered pairs.
        let texts = [
            "V1(x, y) :- Meetings(x, y)",
            "V2(x) :- Meetings(x, y)",
            "V4(y) :- Meetings(x, y)",
            "V5() :- Meetings(x, y)",
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Vc(x) :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, 'Bob')",
            "V13() :- Meetings(9, 'Jim')",
            "V15() :- Meetings(z, z)",
            "Vd(x) :- Meetings(x, x)",
            "V3(x, y, z) :- Contacts(x, y, z)",
            "V6(x, y) :- Contacts(x, y, z)",
            "V7(x, z) :- Contacts(x, y, z)",
            "V9(x) :- Contacts(x, y, z)",
            "V12() :- Contacts(x, y, z)",
        ];
        let mut interner = QueryInterner::new();
        let queries: Vec<_> = texts.iter().map(|t| q(&c, t)).collect();
        let ids: Vec<_> = queries.iter().map(|query| interner.intern(query)).collect();
        for (qa, ia) in queries.iter().zip(&ids) {
            for (qb, ib) in queries.iter().zip(&ids) {
                assert_eq!(
                    rewritable_from_single(qa, qb),
                    interned_rewritable_from_single(interner.resolve(*ia), interner.resolve(*ib)),
                    "disagreement on {qa:?} vs {qb:?}"
                );
            }
        }
    }

    #[test]
    fn query_variable_order_does_not_matter() {
        let c = catalog();
        // The same projection written with permuted head order.
        let v6 = q(&c, "V6(x, y) :- Contacts(x, y, z)");
        let v6_swapped = q(&c, "V6b(y, x) :- Contacts(x, y, z)");
        assert!(rewritable_from_single(&v6, &v6_swapped));
        assert!(rewritable_from_single(&v6_swapped, &v6));
    }
}
