//! Homomorphisms (containment mappings) between conjunctive queries.
//!
//! A homomorphism from query `A` to query `B` is a substitution `h` on the
//! variables of `A` such that
//!
//! * constants are preserved (`h` is the identity on constants), and
//! * for every atom `R(t̄)` of `A`, the atom `R(h(t̄))` appears in `B`.
//!
//! The classical Chandra–Merlin theorem reduces containment of conjunctive
//! queries to the existence of such a mapping that also respects the query
//! heads.  Because the paper's representation discards the head and instead
//! tags variables (Section 5), this module supports two head disciplines,
//! selected by [`HeadPolicy`]:
//!
//! * [`HeadPolicy::Identity`] — distinguished variables must map to
//!   themselves.  This is the right notion when both queries share a variable
//!   space (folding, expansion-vs-query equivalence checks).
//! * [`HeadPolicy::DistinguishedToDistinguished`] — distinguished variables
//!   must map to distinguished variables (of the other query).  This is
//!   "equivalence up to head permutation", the appropriate notion of
//!   information equivalence for tagged queries (the paper's `V1` and `V1'`
//!   example in Section 3.1).

use std::collections::HashMap;

use crate::atom::Atom;
use crate::catalog::RelId;
use crate::intern::{IAtom, ITerm, QueryRef};
use crate::query::ConjunctiveQuery;
use crate::substitution::Substitution;
use crate::term::{Term, VarKind};

/// A relation-indexed store over a set of target atoms.
///
/// The backtracking search must repeatedly answer "which target atoms could
/// atom `R(t̄)` map to?".  Scanning the whole target list for every source
/// atom at every search depth is quadratic in practice; an [`AtomIndex`]
/// buckets the target atoms by relation once and additionally precomputes a
/// per-atom *constant mask* (bit `i` set iff position `i` holds a constant)
/// so that candidates whose shape cannot possibly accommodate the source
/// atom's constants are rejected with one bit test instead of a term-by-term
/// walk.
///
/// Build one index per target atom set and reuse it across searches against
/// that set (e.g. containment checks of many queries against one view).
#[derive(Debug, Clone)]
pub struct AtomIndex<'a> {
    atoms: &'a [Atom],
    buckets: HashMap<RelId, Vec<u32>>,
    const_masks: Vec<u64>,
}

/// Bit `i` set iff position `i` of the atom holds a constant.  Positions
/// beyond 63 fold onto bit 63, keeping the mask a conservative filter for
/// very wide atoms (the check below only ever tests subset-ness).
fn constant_mask(atom: &Atom) -> u64 {
    let mut mask = 0u64;
    for (i, term) in atom.terms.iter().enumerate() {
        if term.is_const() {
            mask |= 1u64 << i.min(63);
        }
    }
    mask
}

impl<'a> AtomIndex<'a> {
    /// Indexes a set of target atoms by relation.
    pub fn new(atoms: &'a [Atom]) -> Self {
        let mut buckets: HashMap<RelId, Vec<u32>> = HashMap::new();
        let mut const_masks = Vec::with_capacity(atoms.len());
        for (i, atom) in atoms.iter().enumerate() {
            buckets.entry(atom.relation).or_default().push(i as u32);
            const_masks.push(constant_mask(atom));
        }
        AtomIndex {
            atoms,
            buckets,
            const_masks,
        }
    }

    /// The indexed atoms, in their original order.
    pub fn atoms(&self) -> &'a [Atom] {
        self.atoms
    }

    /// Indices of the target atoms over `relation` (empty if none).
    pub fn candidates(&self, relation: RelId) -> &[u32] {
        self.buckets
            .get(&relation)
            .map_or(&[], |bucket| bucket.as_slice())
    }

    /// Number of target atoms over `relation` — an O(1) lookup, used to
    /// order the source atoms most-constrained-first.
    pub fn candidate_count(&self, relation: RelId) -> usize {
        self.buckets.get(&relation).map_or(0, Vec::len)
    }

    /// Can the source atom (with precomputed constant mask `source_mask`)
    /// possibly map onto target atom `target_idx`?  Necessary conditions
    /// only: same arity, and a constant in the *target* at every position
    /// where the source has one (constants must be preserved, so the target
    /// must be at least as constant-constrained positionally; target
    /// constants at source-variable positions are fine — variables may map
    /// onto constants).
    #[inline]
    fn shape_admits(&self, source: &Atom, source_mask: u64, target_idx: u32) -> bool {
        let target = &self.atoms[target_idx as usize];
        source.arity() == target.arity()
            && source_mask & !self.const_masks[target_idx as usize] == 0
    }
}

/// How distinguished variables must be treated by a homomorphism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadPolicy {
    /// Distinguished variables of the source must map to themselves.
    ///
    /// Only meaningful when source and target share a variable space.
    Identity,
    /// Distinguished variables of the source must map to distinguished
    /// variables of the target (any of them).
    DistinguishedToDistinguished,
    /// No restriction on distinguished variables (plain body homomorphism).
    Free,
}

/// Searches for a homomorphism from `from` to `to` under the given policy.
///
/// Returns the witnessing substitution if one exists.
pub fn find_homomorphism(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    policy: HeadPolicy,
) -> Option<Substitution> {
    find_homomorphism_into(from, to.atoms(), to, policy)
}

/// Like [`find_homomorphism`] but the target is an explicit set of atoms,
/// interpreted in the variable space of `to_space`.
///
/// This is what query folding needs: the target is a *subset* of the atoms of
/// the source query itself.
pub fn find_homomorphism_into(
    from: &ConjunctiveQuery,
    target_atoms: &[Atom],
    to_space: &ConjunctiveQuery,
    policy: HeadPolicy,
) -> Option<Substitution> {
    find_homomorphism_with_index(from, &AtomIndex::new(target_atoms), to_space, policy)
}

/// Like [`find_homomorphism_into`] with a prebuilt [`AtomIndex`] over the
/// target atoms.
///
/// Callers that run many searches against the same target (candidate
/// filtering, containment of a batch of queries against one view) should
/// build the index once and call this directly.
pub fn find_homomorphism_with_index(
    from: &ConjunctiveQuery,
    index: &AtomIndex<'_>,
    to_space: &ConjunctiveQuery,
    policy: HeadPolicy,
) -> Option<Substitution> {
    let mut subst = Substitution::new();
    // Order atoms so that the most constrained (fewest candidate targets)
    // are matched first; this keeps the backtracking search shallow for the
    // query shapes produced by the workload generator.  Candidate counts
    // come from the index in O(1) per atom instead of a rescan of the
    // target list per atom.
    let mut order: Vec<usize> = (0..from.atoms().len()).collect();
    order.sort_by_key(|&i| index.candidate_count(from.atoms()[i].relation));
    let source_masks: Vec<u64> = from.atoms().iter().map(constant_mask).collect();
    if search(
        from,
        &order,
        0,
        index,
        &source_masks,
        to_space,
        policy,
        &mut subst,
    ) {
        Some(subst)
    } else {
        None
    }
}

/// True if a homomorphism from `from` to `to` exists under the given policy.
pub fn homomorphism_exists(
    from: &ConjunctiveQuery,
    to: &ConjunctiveQuery,
    policy: HeadPolicy,
) -> bool {
    find_homomorphism(from, to, policy).is_some()
}

#[allow(clippy::too_many_arguments)]
fn search(
    from: &ConjunctiveQuery,
    order: &[usize],
    depth: usize,
    index: &AtomIndex<'_>,
    source_masks: &[u64],
    to_space: &ConjunctiveQuery,
    policy: HeadPolicy,
    subst: &mut Substitution,
) -> bool {
    let Some(&atom_idx) = order.get(depth) else {
        return true;
    };
    let atom = &from.atoms()[atom_idx];
    let source_mask = source_masks[atom_idx];
    // Only the target atoms over this atom's relation are candidates, and
    // the constant-mask test rejects shape-incompatible ones without
    // touching their terms.
    for &target_idx in index.candidates(atom.relation) {
        if !index.shape_admits(atom, source_mask, target_idx) {
            continue;
        }
        let target = &index.atoms()[target_idx as usize];
        let mut newly_bound = Vec::new();
        let mut ok = true;
        for (src, dst) in atom.terms.iter().zip(target.terms.iter()) {
            match src {
                Term::Const(c) => {
                    if dst.as_const() != Some(c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v, kind) => {
                    if !term_allowed(*kind, dst, *v, from, to_space, policy) {
                        ok = false;
                        break;
                    }
                    let was_bound = subst.get(*v).is_some();
                    if !subst.bind(*v, dst.clone()) {
                        ok = false;
                        break;
                    }
                    if !was_bound {
                        newly_bound.push(*v);
                    }
                }
            }
        }
        if ok
            && search(
                from,
                order,
                depth + 1,
                index,
                source_masks,
                to_space,
                policy,
                subst,
            )
        {
            return true;
        }
        for v in newly_bound {
            subst.unbind(v);
        }
    }
    false
}

fn term_allowed(
    src_kind: VarKind,
    dst: &Term,
    src_var: crate::term::VarId,
    _from: &ConjunctiveQuery,
    _to_space: &ConjunctiveQuery,
    policy: HeadPolicy,
) -> bool {
    if src_kind.is_existential() {
        return true;
    }
    // src is a distinguished variable.
    match policy {
        HeadPolicy::Free => true,
        HeadPolicy::Identity => {
            matches!(dst, Term::Var(v, VarKind::Distinguished) if *v == src_var)
        }
        HeadPolicy::DistinguishedToDistinguished => {
            matches!(dst, Term::Var(_, VarKind::Distinguished))
        }
    }
}

// ---------------------------------------------------------------------------
// Homomorphisms over the interned flat representation.
// ---------------------------------------------------------------------------

/// True if a homomorphism exists between two interned queries under the
/// given policy — the [`homomorphism_exists`] of the flat
/// [`QueryRef`] representation.
///
/// Both views must come from the same
/// [`QueryInterner`](crate::intern::QueryInterner) (or buffers derived from
/// it): constants are compared by interned id.  When `from` carries its GYO
/// ear ordering (an acyclic query resolved from the interner) the question
/// is answered by the polynomial semi-join pass of
/// [`structure`](crate::structure); otherwise the generic backtracking
/// search runs.  Both paths return identical verdicts — the dispatch is a
/// pure fast path.
pub fn interned_homomorphism_exists(
    from: QueryRef<'_>,
    to: QueryRef<'_>,
    policy: HeadPolicy,
) -> bool {
    interned_homomorphism_into(from, to.atoms, to, policy)
}

/// Like [`interned_homomorphism_exists`] with an explicit target atom set
/// interpreted in `to`'s term/variable space — what interned folding needs
/// (the target is a subset of the source's own atoms).
///
/// Whole-body questions (`target_atoms` is all of `to` — containment,
/// equivalence, rewriting) dispatch acyclic sources to the semi-join fast
/// path (see [`structure`](crate::structure)), with cyclic sources and
/// temporaries without an ear ordering falling back to
/// [`interned_homomorphism_into_generic`].  Subset targets (folding's
/// remove-one-atom checks) always run the generic search: those instances
/// are small and usually fail, and the indexed backtracking's fail-fast
/// beats the semi-join pass's up-front candidate construction there.
pub fn interned_homomorphism_into(
    from: QueryRef<'_>,
    target_atoms: &[IAtom],
    to: QueryRef<'_>,
    policy: HeadPolicy,
) -> bool {
    if crate::structure::dispatch_enabled() && target_atoms.len() == to.atoms.len() {
        if let Some(ears) = from.ears {
            crate::structure::note_structural_check();
            return crate::structure::semi_join_homomorphism_into(
                from,
                ears,
                target_atoms,
                to,
                policy,
            );
        }
        crate::structure::note_backtrack_fallback();
    }
    interned_homomorphism_into_generic(from, target_atoms, to, policy)
}

/// [`interned_homomorphism_exists`] restricted to the generic backtracking
/// search, ignoring any structural certificate — the complete baseline the
/// property suite pins the semi-join fast path against.
pub fn interned_homomorphism_exists_generic(
    from: QueryRef<'_>,
    to: QueryRef<'_>,
    policy: HeadPolicy,
) -> bool {
    interned_homomorphism_into_generic(from, to.atoms, to, policy)
}

/// [`interned_homomorphism_into`] restricted to the generic backtracking
/// search (never the semi-join fast path).
pub fn interned_homomorphism_into_generic(
    from: QueryRef<'_>,
    target_atoms: &[IAtom],
    to: QueryRef<'_>,
    policy: HeadPolicy,
) -> bool {
    // Most-constrained-first atom order, as in the boxed search.
    let mut order: Vec<u32> = (0..from.atoms.len() as u32).collect();
    order.sort_by_key(|&i| {
        let relation = from.atoms[i as usize].relation;
        target_atoms
            .iter()
            .filter(|a| a.relation == relation)
            .count()
    });
    let mut subst: Vec<Option<ITerm>> = vec![None; from.num_vars()];
    interned_search(from, &order, 0, target_atoms, to, policy, &mut subst)
}

#[allow(clippy::too_many_arguments)]
fn interned_search(
    from: QueryRef<'_>,
    order: &[u32],
    depth: usize,
    target_atoms: &[IAtom],
    to: QueryRef<'_>,
    policy: HeadPolicy,
    subst: &mut [Option<ITerm>],
) -> bool {
    let Some(&atom_idx) = order.get(depth) else {
        return true;
    };
    let atom = from.atoms[atom_idx as usize];
    let source_terms = atom.terms(from.terms);
    for target in target_atoms {
        if target.relation != atom.relation || target.term_len != atom.term_len {
            continue;
        }
        let target_terms = target.terms(to.terms);
        let mut newly_bound: Vec<u32> = Vec::new();
        let mut ok = true;
        for (src, dst) in source_terms.iter().zip(target_terms.iter()) {
            match *src {
                ITerm::Const(c) => {
                    if *dst != ITerm::Const(c) {
                        ok = false;
                        break;
                    }
                }
                ITerm::Var(v, kind) => {
                    if !interned_term_allowed(kind, *dst, v, policy) {
                        ok = false;
                        break;
                    }
                    match subst[v as usize] {
                        Some(bound) if bound != *dst => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            subst[v as usize] = Some(*dst);
                            newly_bound.push(v);
                        }
                    }
                }
            }
        }
        if ok && interned_search(from, order, depth + 1, target_atoms, to, policy, subst) {
            return true;
        }
        for v in newly_bound {
            subst[v as usize] = None;
        }
    }
    false
}

#[inline]
pub(crate) fn interned_term_allowed(
    src_kind: VarKind,
    dst: ITerm,
    src_var: u32,
    policy: HeadPolicy,
) -> bool {
    if src_kind.is_existential() {
        return true;
    }
    match policy {
        HeadPolicy::Free => true,
        HeadPolicy::Identity => {
            matches!(dst, ITerm::Var(v, VarKind::Distinguished) if v == src_var)
        }
        HeadPolicy::DistinguishedToDistinguished => {
            matches!(dst, ITerm::Var(_, VarKind::Distinguished))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    #[test]
    fn identity_homomorphism_always_exists() {
        let c = catalog();
        let q = parse_query(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        for policy in [
            HeadPolicy::Identity,
            HeadPolicy::DistinguishedToDistinguished,
            HeadPolicy::Free,
        ] {
            assert!(homomorphism_exists(&q, &q, policy));
        }
    }

    #[test]
    fn body_homomorphism_ignores_head_tags_under_free_policy() {
        let c = catalog();
        // V2(x) :- Meetings(x, y)   and   V5() :- Meetings(x, y)
        let v2 = parse_query(&c, "V2(x) :- Meetings(x, y)").unwrap();
        let v5 = parse_query(&c, "V5() :- Meetings(x, y)").unwrap();
        // Bodies are homomorphic in both directions when heads are ignored.
        assert!(homomorphism_exists(&v2, &v5, HeadPolicy::Free));
        assert!(homomorphism_exists(&v5, &v2, HeadPolicy::Free));
        // But V2's distinguished variable cannot map to an existential one.
        assert!(!homomorphism_exists(
            &v2,
            &v5,
            HeadPolicy::DistinguishedToDistinguished
        ));
        // The boolean query maps into V2 fine (no distinguished variables).
        assert!(homomorphism_exists(
            &v5,
            &v2,
            HeadPolicy::DistinguishedToDistinguished
        ));
    }

    #[test]
    fn constants_must_be_preserved() {
        let c = catalog();
        let q_const = parse_query(&c, "Q() :- Meetings(9, 'Jim')").unwrap();
        let q_var = parse_query(&c, "Q() :- Meetings(x, y)").unwrap();
        // Variables can map to constants ...
        assert!(homomorphism_exists(&q_var, &q_const, HeadPolicy::Free));
        // ... but constants cannot map to variables or other constants.
        assert!(!homomorphism_exists(&q_const, &q_var, HeadPolicy::Free));

        let other_const = parse_query(&c, "Q() :- Meetings(10, 'Jim')").unwrap();
        assert!(!homomorphism_exists(
            &q_const,
            &other_const,
            HeadPolicy::Free
        ));
    }

    #[test]
    fn repeated_variables_constrain_the_mapping() {
        let c = catalog();
        let diag = parse_query(&c, "Q() :- Meetings(z, z)").unwrap();
        let full = parse_query(&c, "Q() :- Meetings(x, y)").unwrap();
        // full -> diag: x and y can both map to z.
        assert!(homomorphism_exists(&full, &diag, HeadPolicy::Free));
        // diag -> full: z would have to map to both x and y; impossible.
        assert!(!homomorphism_exists(&diag, &full, HeadPolicy::Free));
    }

    #[test]
    fn multi_atom_queries_map_atom_by_atom() {
        let c = catalog();
        let q2 = parse_query(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        let bigger = parse_query(
            &c,
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern'), Contacts(y, u, 'Manager')",
        )
        .unwrap();
        // q2's atoms all appear in `bigger`, so q2 maps into it.
        assert!(homomorphism_exists(&q2, &bigger, HeadPolicy::Free));
        // `bigger` has an atom with constant 'Manager' that has no image in q2.
        assert!(!homomorphism_exists(&bigger, &q2, HeadPolicy::Free));
    }

    #[test]
    fn homomorphism_into_subset_of_atoms_supports_folding() {
        let c = catalog();
        // Redundant query: the second Meetings atom folds into the first.
        let q = parse_query(&c, "Q(x) :- Meetings(x, y), Meetings(x, z)").unwrap();
        let first_atom = vec![q.atoms()[0].clone()];
        let h = find_homomorphism_into(&q, &first_atom, &q, HeadPolicy::Identity)
            .expect("redundant atom should fold away");
        // x stays fixed, z maps to y.
        let x = q.distinguished_vars().next().unwrap();
        assert_eq!(
            h.get(x),
            Some(&crate::term::Term::Var(x, VarKind::Distinguished))
        );
    }

    #[test]
    fn identity_policy_requires_distinguished_fixpoints() {
        let c = catalog();
        let q1 = parse_query(&c, "Q(x) :- Meetings(x, y)").unwrap();
        // Same shape but the distinguished variable sits in the other column.
        let q2 = parse_query(&c, "Q(y) :- Meetings(x, y)").unwrap();
        // In a shared variable space x has id 0 in q1 but the distinguished
        // variable of q2 is id 1, so identity mapping fails ...
        assert!(!homomorphism_exists(&q1, &q2, HeadPolicy::Identity));
        // ... and dist-to-dist fails too: the only candidate atom forces
        // q1's distinguished x onto q2's existential first column.
        assert!(!homomorphism_exists(
            &q1,
            &q2,
            HeadPolicy::DistinguishedToDistinguished
        ));
        // Ignoring the head entirely, the bodies are of course homomorphic.
        assert!(homomorphism_exists(&q1, &q2, HeadPolicy::Free));
    }

    #[test]
    fn atom_index_buckets_and_counts() {
        let c = catalog();
        let q = parse_query(
            &c,
            "Q(x) :- Meetings(x, y), Meetings(x, 'Cathy'), Contacts(y, w, 'Intern')",
        )
        .unwrap();
        let index = AtomIndex::new(q.atoms());
        let meetings = c.resolve("Meetings").unwrap();
        let contacts = c.resolve("Contacts").unwrap();
        assert_eq!(index.candidate_count(meetings), 2);
        assert_eq!(index.candidate_count(contacts), 1);
        assert_eq!(index.candidates(meetings), &[0, 1]);
        assert_eq!(index.candidates(contacts), &[2]);
        // A relation with no target atoms has no candidates.
        let mut big = Catalog::paper_example();
        let other = big.add_relation("Other", &["a"]).unwrap();
        assert_eq!(index.candidate_count(other), 0);
        assert!(index.candidates(other).is_empty());
    }

    #[test]
    fn constant_masks_prune_only_impossible_targets() {
        let c = catalog();
        // Source atom selects a constant in position 2: only targets with a
        // constant there pass the shape filter.
        let src = parse_query(&c, "Q(x) :- Meetings(x, 'Cathy')").unwrap();
        let tgt_const = parse_query(&c, "Q(x) :- Meetings(x, 'Cathy')").unwrap();
        let tgt_var = parse_query(&c, "Q(x, y) :- Meetings(x, y)").unwrap();
        assert!(homomorphism_exists(&src, &tgt_const, HeadPolicy::Free));
        assert!(!homomorphism_exists(&src, &tgt_var, HeadPolicy::Free));
        // The other direction is never pruned: variables map onto constants.
        assert!(homomorphism_exists(&tgt_var, &tgt_const, HeadPolicy::Free));
    }

    #[test]
    fn prebuilt_index_can_be_reused_across_searches() {
        let c = catalog();
        let target = parse_query(
            &c,
            "Q() :- Meetings(10, 'Cathy'), Meetings(12, 'Bob'), Contacts(1, 2, 'Intern')",
        )
        .unwrap();
        let index = AtomIndex::new(target.atoms());
        for (text, expected) in [
            ("Q() :- Meetings(x, 'Cathy')", true),
            ("Q() :- Meetings(x, 'Jim')", false),
            ("Q() :- Meetings(x, y), Contacts(z, w, u)", true),
            ("Q() :- Contacts(x, y, 'Manager')", false),
        ] {
            let q = parse_query(&c, text).unwrap();
            let found =
                find_homomorphism_with_index(&q, &index, &target, HeadPolicy::Free).is_some();
            assert_eq!(found, expected, "unexpected result for {text}");
        }
    }

    #[test]
    fn returned_substitution_is_a_real_witness() {
        let c = catalog();
        let small = parse_query(&c, "Q() :- Meetings(x, 'Cathy')").unwrap();
        let big = parse_query(&c, "Q() :- Meetings(10, 'Cathy'), Meetings(12, 'Bob')").unwrap();
        let h = find_homomorphism(&small, &big, HeadPolicy::Free).unwrap();
        let image = h.apply_atom(&small.atoms()[0]);
        assert!(big.atoms().contains(&image));
    }

    #[test]
    fn interned_search_agrees_with_the_boxed_search() {
        use crate::intern::QueryInterner;
        let c = catalog();
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q() :- Meetings(z, z)",
            "Q() :- Meetings(9, 'Jim')",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern'), Contacts(y, u, 'Manager')",
        ];
        let mut interner = QueryInterner::new();
        let queries: Vec<_> = texts.iter().map(|t| parse_query(&c, t).unwrap()).collect();
        let ids: Vec<_> = queries.iter().map(|q| interner.intern(q)).collect();
        for policy in [
            HeadPolicy::Identity,
            HeadPolicy::DistinguishedToDistinguished,
            HeadPolicy::Free,
        ] {
            for (qa, ia) in queries.iter().zip(&ids) {
                for (qb, ib) in queries.iter().zip(&ids) {
                    // Identity only makes sense in a shared variable space,
                    // but both implementations must still agree on whatever
                    // they compute for it.
                    assert_eq!(
                        homomorphism_exists(qa, qb, policy),
                        interned_homomorphism_exists(
                            interner.resolve(*ia),
                            interner.resolve(*ib),
                            policy
                        ),
                        "disagreement under {policy:?} on {qa:?} -> {qb:?}"
                    );
                }
            }
        }
    }
}
