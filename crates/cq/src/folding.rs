//! Query folding (core computation).
//!
//! The `Dissect` labeling algorithm of Section 5.2 "begins by computing a
//! folding \[9\] of Q, which intuitively removes 'redundant' atoms from Q".
//! A folding is a minimal equivalent sub-query: the *core* of the query in
//! the sense of Chandra–Merlin.
//!
//! As the paper's complexity analysis notes (Section 6.1), query folding is
//! NP-hard in general and the reference implementation uses a brute-force
//! search.  We do the same: an atom is redundant if there is a homomorphism
//! from the query into the remaining atoms that fixes distinguished
//! variables.  Atoms are removed greedily until a fixpoint is reached, which
//! yields a core because homomorphisms compose.

use crate::atom::Atom;
use crate::homomorphism::{find_homomorphism_into, interned_homomorphism_into, HeadPolicy};
use crate::intern::{IAtom, QueryRef};
use crate::query::ConjunctiveQuery;

/// Computes a folding (core) of the query: an equivalent query whose body is
/// a minimal subset of the original atoms.
///
/// The returned query shares the variable table of the input, so variables
/// keep their ids, names and kinds.  Some variables may no longer appear in
/// the body; since they were redundant this does not affect distinguished
/// variables (a distinguished variable always survives folding because
/// folding homomorphisms fix it).
pub fn fold(query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut atoms: Vec<Atom> = query.atoms().to_vec();
    if atoms.len() <= 1 {
        return query.clone();
    }
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < atoms.len() {
            if atoms.len() == 1 {
                break;
            }
            // An atom can only fold away if some *other* atom references the
            // same relation (its image must live somewhere); skipping the
            // expensive homomorphism search otherwise is a large win on the
            // multi-relation queries the workload generator produces.
            let has_sibling = atoms
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.relation == atoms[i].relation);
            if !has_sibling {
                i += 1;
                continue;
            }
            let mut candidate = atoms.clone();
            candidate.remove(i);
            // The query is equivalent to the reduced atom set iff the full
            // query maps homomorphically into the reduced set while fixing
            // distinguished variables (the reverse direction is trivial
            // because the reduced set is a subset).
            if find_homomorphism_into(query, &candidate, query, HeadPolicy::Identity).is_some() {
                atoms = candidate;
                removed_any = true;
                // Restart scanning: removing one atom can expose further
                // redundancy at earlier positions.
                i = 0;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }
    query.with_atoms_unchecked(atoms)
}

/// True if the query is already a core (folding it removes nothing).
pub fn is_folded(query: &ConjunctiveQuery) -> bool {
    fold(query).num_atoms() == query.num_atoms()
}

/// [`fold`] over the interned flat representation: returns the atoms of a
/// folding (core) of the query, as spans into the query's term buffer.
///
/// Runs the same greedy fixpoint as [`fold`] — atom `i` is removed when the
/// whole query maps homomorphically into the remaining atoms while fixing
/// distinguished variables — so the surviving atom set matches the boxed
/// implementation exactly (the `Dissect` equivalence tests rely on that).
pub fn fold_interned(query: QueryRef<'_>) -> Vec<IAtom> {
    fold_interned_indices(query)
        .into_iter()
        .map(|i| query.atoms[i as usize])
        .collect()
}

/// Like [`fold_interned`] but returns the **indices** of the surviving
/// atoms within `query.atoms`, in original order — the form the interner's
/// per-query core cache stores, since indices stay meaningful against the
/// arena while `IAtom` spans would be redundant copies.
pub fn fold_interned_indices(query: QueryRef<'_>) -> Vec<u32> {
    let mut kept: Vec<u32> = (0..query.atoms.len() as u32).collect();
    if kept.len() <= 1 {
        return kept;
    }
    let mut atoms: Vec<IAtom> = query.atoms.to_vec();
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < atoms.len() {
            if atoms.len() == 1 {
                break;
            }
            let has_sibling = atoms
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.relation == atoms[i].relation);
            if !has_sibling {
                i += 1;
                continue;
            }
            let mut candidate = atoms.clone();
            candidate.remove(i);
            if interned_homomorphism_into(query, &candidate, query, HeadPolicy::Identity) {
                atoms = candidate;
                kept.remove(i);
                removed_any = true;
                i = 0;
            } else {
                i += 1;
            }
        }
        if !removed_any {
            break;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::containment::equivalent_same_space;
    use crate::parser::parse_query;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    #[test]
    fn single_atom_queries_are_already_folded() {
        let c = catalog();
        let q = parse_query(&c, "Q(x) :- Meetings(x, 'Cathy')").unwrap();
        let folded = fold(&q);
        assert_eq!(folded, q);
        assert!(is_folded(&q));
    }

    #[test]
    fn duplicate_projection_atoms_fold_away() {
        let c = catalog();
        let q = parse_query(&c, "Q(x) :- Meetings(x, y), Meetings(x, z)").unwrap();
        let folded = fold(&q);
        assert_eq!(folded.num_atoms(), 1);
        assert!(equivalent_same_space(&folded, &q));
        assert!(!is_folded(&q));
    }

    #[test]
    fn joins_do_not_fold() {
        let c = catalog();
        let q2 = parse_query(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        let folded = fold(&q2);
        assert_eq!(folded.num_atoms(), 2);
        assert!(is_folded(&q2));
    }

    #[test]
    fn more_specific_atom_absorbs_a_general_one() {
        let c = catalog();
        // The unconstrained Meetings atom is implied by the constrained one
        // only when its variables are free to map there: here y is
        // existential and x is shared, so Meetings(x, y) folds into
        // Meetings(x, 'Cathy').
        let q = parse_query(&c, "Q(x) :- Meetings(x, 'Cathy'), Meetings(x, y)").unwrap();
        let folded = fold(&q);
        assert_eq!(folded.num_atoms(), 1);
        assert!(folded.atoms()[0].has_constants());
        assert!(equivalent_same_space(&folded, &q));
    }

    #[test]
    fn distinguished_variables_block_folding() {
        let c = catalog();
        // Same shape as above but y is distinguished, so the second atom
        // carries information of its own and must survive.
        let q = parse_query(&c, "Q(x, y) :- Meetings(x, 'Cathy'), Meetings(x, y)").unwrap();
        let folded = fold(&q);
        assert_eq!(folded.num_atoms(), 2);
    }

    #[test]
    fn chains_of_redundant_atoms_fold_to_a_single_atom() {
        let c = catalog();
        let q = parse_query(
            &c,
            "Q() :- Meetings(a, b), Meetings(c, d), Meetings(e, f), Meetings(g, h)",
        )
        .unwrap();
        let folded = fold(&q);
        assert_eq!(folded.num_atoms(), 1);
        assert!(equivalent_same_space(&folded, &q));
    }

    #[test]
    fn folding_is_idempotent() {
        let c = catalog();
        let q = parse_query(
            &c,
            "Q(x) :- Meetings(x, y), Meetings(x, z), Contacts(y, w, 'Intern'), Contacts(y, u, p)",
        )
        .unwrap();
        let once = fold(&q);
        let twice = fold(&once);
        assert_eq!(once, twice);
        assert!(equivalent_same_space(&once, &q));
    }

    #[test]
    fn self_join_with_repeated_variable_is_kept() {
        let c = catalog();
        // Meetings(x, x) is strictly more restrictive than Meetings(x, y):
        // the general atom folds into it, but not vice versa, and the
        // diagonal must stay because x is distinguished.
        let q = parse_query(&c, "Q(x) :- Meetings(x, x), Meetings(x, y)").unwrap();
        let folded = fold(&q);
        assert_eq!(folded.num_atoms(), 1);
        assert!(folded.atoms()[0].has_repeated_vars());
    }

    #[test]
    fn interned_folding_keeps_the_same_atoms_as_boxed_folding() {
        use crate::intern::QueryInterner;
        let c = catalog();
        let texts = [
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, 'Cathy'), Meetings(x, y)",
            "Q(x, y) :- Meetings(x, 'Cathy'), Meetings(x, y)",
            "Q() :- Meetings(a, b), Meetings(c, d), Meetings(e, f), Meetings(g, h)",
            "Q(x) :- Meetings(x, x), Meetings(x, y)",
            "Q(x) :- Meetings(x, y), Meetings(x, z), Contacts(y, w, 'Intern'), Contacts(y, u, p)",
        ];
        let mut interner = QueryInterner::new();
        for text in texts {
            let query = parse_query(&c, text).unwrap();
            let boxed = fold(&query);
            let id = interner.intern(&query);
            let kept = fold_interned(interner.resolve(id));
            assert_eq!(
                kept.len(),
                boxed.num_atoms(),
                "atom count differs on {text}"
            );
            // The surviving relations line up position by position (folding
            // preserves atom order within the survivors).
            let boxed_relations: Vec<_> = boxed.atoms().iter().map(|a| a.relation).collect();
            let kept_relations: Vec<_> = kept.iter().map(|a| a.relation).collect();
            assert_eq!(
                boxed_relations, kept_relations,
                "survivors differ on {text}"
            );
        }
    }
}
