//! Structural classification of conjunctive queries: acyclicity via GYO
//! reduction, and the semi-join (Yannakakis-style) homomorphism fast path
//! it unlocks.
//!
//! Homomorphism search is the innermost kernel under every containment,
//! folding and rewriting call, and the generic backtracking search of
//! [`homomorphism`](crate::homomorphism) is worst-case exponential.  For
//! **α-acyclic** queries a much better algorithm exists: classify the query's
//! hypergraph once, keep the certificate (a join tree in ear-removal order),
//! and answer every later homomorphism question with a linear pass of
//! semi-joins over that tree.  The [`QueryInterner`](crate::intern) is the
//! natural place to do the classification — each distinct shape is interned
//! exactly once, so the GYO run amortizes across every reuse of the id.
//!
//! # GYO reduction
//!
//! The Graham / Yu–Özsoyoğlu reduction decides α-acyclicity of a hypergraph
//! (here: one hyperedge per atom, containing the atom's variables).  An edge
//! `e` is an **ear** with **witness** `f` if every variable of `e` that also
//! occurs in some *other* remaining edge is contained in `f` (variables
//! private to `e` are unconstrained).  The reduction repeatedly removes an
//! ear until either a single edge remains — the query is acyclic, and the
//! removal order with its witnesses forms a join tree — or no ear exists,
//! in which case the query is cyclic and the generic backtracking search
//! remains the complete decision procedure.
//!
//! [`gyo_reduce`] returns the removal order as [`EarStep`]s (`atom` removed
//! with `parent` as witness; the final surviving atom carries
//! [`NO_PARENT`]).  Because each step's witness is still present when the
//! step runs, replaying the steps in order visits every node of the join
//! tree **children before parents** — exactly the order the bottom-up
//! semi-join pass needs.
//!
//! # The semi-join fast path
//!
//! [`semi_join_homomorphism_into`] decides existence of a homomorphism from
//! an acyclic query into a target atom set without backtracking: build the
//! per-atom candidate lists (target atoms compatible with the source atom
//! under the [`HeadPolicy`]), then walk the join tree bottom-up, filtering
//! each parent's candidates to those joinable with at least one candidate of
//! the removed child.  The query maps iff the root retains a candidate.
//! Soundness and completeness follow from the running-intersection property
//! of the join tree: all constraints between atoms are variable equalities
//! along tree edges, and the per-variable head-policy constraints are unary,
//! so they fold into candidate generation.
//!
//! Dispatch lives in
//! [`interned_homomorphism_into`](crate::homomorphism::interned_homomorphism_into):
//! acyclic sources (a [`QueryRef`] resolved from the interner with its ear
//! ordering attached) take the semi-join path, everything else falls back to
//! backtracking.  The process-wide [`counters`] record which path ran, and
//! [`set_dispatch_enabled`] lets benchmarks force the generic path for
//! apples-to-apples comparisons.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::homomorphism::{interned_term_allowed, HeadPolicy};
use crate::intern::{IAtom, ITerm, QueryRef};

/// The structural class of an interned query, decided once at intern time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeClass {
    /// The query's hypergraph is α-acyclic: GYO reduction succeeded and the
    /// interner keeps its join tree (ear ordering) for the semi-join fast
    /// path.
    Acyclic,
    /// GYO reduction got stuck: the query has a cyclic core and homomorphism
    /// questions about it use the generic backtracking search.
    Cyclic,
}

/// Parent marker of the join-tree root (the last atom standing after GYO
/// reduction).
pub const NO_PARENT: u32 = u32::MAX;

/// One step of a successful GYO reduction: atom `atom` was removed as an ear
/// with atom `parent` as its witness.
///
/// A query's steps, in order, list every atom exactly once and end with the
/// root (whose `parent` is [`NO_PARENT`]).  Replayed in order they traverse
/// the join tree children-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EarStep {
    /// Index of the removed atom within the query's atom list.
    pub atom: u32,
    /// Index of the witness atom (the ear's parent in the join tree), or
    /// [`NO_PARENT`] for the root.
    pub parent: u32,
}

/// Runs GYO reduction over the query's hypergraph.
///
/// Returns the ear-removal order (a join tree in children-first order) if
/// the query is α-acyclic, `None` if it is cyclic.  Queries with zero or one
/// atom are trivially acyclic.
pub fn gyo_reduce(query: QueryRef<'_>) -> Option<Vec<EarStep>> {
    let n = query.num_atoms();
    let mut steps = Vec::with_capacity(n);
    if n == 0 {
        return Some(steps);
    }
    let vars = distinct_vars(query);
    // Occurrence counts over the *remaining* edges: a variable with count 1
    // is private to its edge and never constrains ear removal.
    let mut occ = vec![0u32; query.num_vars()];
    for vs in &vars {
        for &v in vs {
            occ[v as usize] += 1;
        }
    }
    let mut alive = vec![true; n];
    let mut remaining = n;
    while remaining > 1 {
        let mut found = None;
        'scan: for e in 0..n {
            if !alive[e] {
                continue;
            }
            for f in 0..n {
                if f == e || !alive[f] {
                    continue;
                }
                let is_ear = vars[e]
                    .iter()
                    .all(|&v| occ[v as usize] == 1 || vars[f].contains(&v));
                if is_ear {
                    found = Some((e, f));
                    break 'scan;
                }
            }
        }
        let (e, f) = found?;
        steps.push(EarStep {
            atom: e as u32,
            parent: f as u32,
        });
        alive[e] = false;
        remaining -= 1;
        for &v in &vars[e] {
            occ[v as usize] -= 1;
        }
    }
    let root = alive.iter().position(|&a| a).expect("one atom remains");
    steps.push(EarStep {
        atom: root as u32,
        parent: NO_PARENT,
    });
    Some(steps)
}

/// The distinct variables of each atom, in first-occurrence order.
fn distinct_vars(query: QueryRef<'_>) -> Vec<Vec<u32>> {
    (0..query.num_atoms())
        .map(|i| {
            let mut vs: Vec<u32> = Vec::new();
            for term in query.atom_terms(i) {
                if let Some(v) = term.var_index() {
                    if !vs.contains(&v) {
                        vs.push(v);
                    }
                }
            }
            vs
        })
        .collect()
}

/// Decides existence of a homomorphism from the acyclic query `from` into
/// `target_atoms` (interpreted in `to`'s term space) by bottom-up semi-joins
/// over `from`'s join tree.
///
/// `ears` must be the [`gyo_reduce`] certificate of `from` (the interner's
/// side table provides it).  The verdict is exactly that of
/// [`interned_homomorphism_into_generic`](crate::homomorphism::interned_homomorphism_into_generic)
/// on the same inputs, for every [`HeadPolicy`]; the property suite pins the
/// two against each other.
pub fn semi_join_homomorphism_into(
    from: QueryRef<'_>,
    ears: &[EarStep],
    target_atoms: &[IAtom],
    to: QueryRef<'_>,
    policy: HeadPolicy,
) -> bool {
    let n = from.num_atoms();
    debug_assert_eq!(ears.len(), n, "ear ordering must cover every atom");
    if n == 0 {
        return true;
    }
    // Candidate generation: for each source atom, the images of its distinct
    // variables under every compatible target atom.  Compatibility mirrors
    // the generic search's per-term checks exactly — constants preserved,
    // head policy respected, repeated variables consistent within the atom.
    let mut vars: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut cands: Vec<Vec<Vec<ITerm>>> = Vec::with_capacity(n);
    for i in 0..n {
        let atom = from.atoms[i];
        let source_terms = atom.terms(from.terms);
        let mut vs: Vec<u32> = Vec::new();
        for term in source_terms {
            if let Some(v) = term.var_index() {
                if !vs.contains(&v) {
                    vs.push(v);
                }
            }
        }
        let mut atom_cands: Vec<Vec<ITerm>> = Vec::new();
        'targets: for target in target_atoms {
            if target.relation != atom.relation || target.term_len != atom.term_len {
                continue;
            }
            let target_terms = target.terms(to.terms);
            // `vs` is in first-occurrence order, so the first time a
            // variable appears its slot is exactly `image.len()`.
            let mut image: Vec<ITerm> = Vec::with_capacity(vs.len());
            for (src, dst) in source_terms.iter().zip(target_terms.iter()) {
                match *src {
                    ITerm::Const(c) => {
                        if *dst != ITerm::Const(c) {
                            continue 'targets;
                        }
                    }
                    ITerm::Var(v, kind) => {
                        if !interned_term_allowed(kind, *dst, v, policy) {
                            continue 'targets;
                        }
                        let slot = vs.iter().position(|&w| w == v).expect("v is in vs");
                        if slot == image.len() {
                            image.push(*dst);
                        } else if image[slot] != *dst {
                            continue 'targets;
                        }
                    }
                }
            }
            atom_cands.push(image);
        }
        if atom_cands.is_empty() {
            return false;
        }
        vars.push(vs);
        cands.push(atom_cands);
    }
    // Bottom-up semi-joins in ear-removal order (children before parents):
    // the parent keeps a candidate only if the removed child has a candidate
    // agreeing on every shared variable.  The running-intersection property
    // of the join tree makes the surviving root candidates extendable to a
    // full homomorphism top-down.
    for step in ears {
        let e = step.atom as usize;
        if step.parent == NO_PARENT {
            debug_assert!(!cands[e].is_empty());
            continue;
        }
        let p = step.parent as usize;
        let shared: Vec<(usize, usize)> = vars[e]
            .iter()
            .enumerate()
            .filter_map(|(ie, &v)| vars[p].iter().position(|&w| w == v).map(|ip| (ie, ip)))
            .collect();
        // The removed atom is never referenced again (only as the parent of
        // *earlier* steps), so its candidate list can be taken by value.
        let ecands = std::mem::take(&mut cands[e]);
        cands[p].retain(|pc| {
            ecands
                .iter()
                .any(|ec| shared.iter().all(|&(ie, ip)| ec[ie] == pc[ip]))
        });
        if cands[p].is_empty() {
            return false;
        }
    }
    true
}

static STRUCTURAL_CHECKS: AtomicU64 = AtomicU64::new(0);
static BACKTRACK_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static DISPATCH_ENABLED: AtomicBool = AtomicBool::new(true);

/// Process-wide, monotonically increasing dispatch counters (read them
/// before and after a region and subtract to attribute work to it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructureCounters {
    /// Homomorphism searches answered by the semi-join fast path.
    pub structural_checks: u64,
    /// Searches that ran the generic backtracking path while dispatch was
    /// enabled (cyclic sources, or temporaries without an ear ordering).
    pub backtrack_fallbacks: u64,
}

/// Snapshot of the process-wide dispatch [`StructureCounters`].
pub fn counters() -> StructureCounters {
    StructureCounters {
        structural_checks: STRUCTURAL_CHECKS.load(Ordering::Relaxed),
        backtrack_fallbacks: BACKTRACK_FALLBACKS.load(Ordering::Relaxed),
    }
}

/// True if structural dispatch is enabled (the default).
#[inline]
pub fn dispatch_enabled() -> bool {
    DISPATCH_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables structural dispatch process-wide.
///
/// Intended for single-threaded benchmark harnesses that need the generic
/// backtracking path on acyclic inputs for a like-for-like comparison; with
/// dispatch disabled neither counter advances.  Leave enabled in production.
pub fn set_dispatch_enabled(enabled: bool) {
    DISPATCH_ENABLED.store(enabled, Ordering::Relaxed);
}

#[inline]
pub(crate) fn note_structural_check() {
    STRUCTURAL_CHECKS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn note_backtrack_fallback() {
    BACKTRACK_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::homomorphism::interned_homomorphism_exists_generic;
    use crate::intern::{QueryId, QueryInterner};
    use crate::parser::parse_query;
    use crate::query::ConjunctiveQuery;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    fn raw(interner: &QueryInterner, id: QueryId) -> QueryRef<'_> {
        interner.resolve(id)
    }

    #[test]
    fn single_atoms_and_chains_are_acyclic() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        for text in [
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y), Meetings(y, z), Meetings(z, w)",
            "Q(x) :- Meetings(x, y), Meetings(x, z), Meetings(x, w)",
            "Q() :- Meetings(a, b), Contacts(c, d, e)",
        ] {
            let id = interner.intern(&q(&c, text));
            let query = raw(&interner, id);
            let steps = gyo_reduce(query).unwrap_or_else(|| panic!("{text} should be acyclic"));
            assert_eq!(steps.len(), query.num_atoms(), "{text}");
            // Every atom removed exactly once; exactly one root, and it is
            // the final step (its witness must outlive every ear).
            let mut seen = vec![false; query.num_atoms()];
            for step in &steps {
                assert!(!seen[step.atom as usize], "{text}");
                seen[step.atom as usize] = true;
            }
            let roots = steps.iter().filter(|s| s.parent == NO_PARENT).count();
            assert_eq!(roots, 1, "{text}");
            assert_eq!(steps.last().unwrap().parent, NO_PARENT, "{text}");
        }
    }

    #[test]
    fn the_triangle_is_cyclic() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let id = interner.intern(&q(
            &c,
            "Q() :- Meetings(x, y), Meetings(y, z), Meetings(z, x)",
        ));
        assert_eq!(gyo_reduce(raw(&interner, id)), None);
        // Adding a pendant atom does not break the cycle.
        let id = interner.intern(&q(
            &c,
            "Q() :- Meetings(x, y), Meetings(y, z), Meetings(z, x), Contacts(x, p, r)",
        ));
        assert_eq!(gyo_reduce(raw(&interner, id)), None);
    }

    #[test]
    fn covering_an_edge_restores_acyclicity() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        // Contacts(x, y, z) covers the whole triangle's variable set, so
        // every Meetings edge is an ear with it as witness.
        let id = interner.intern(&q(
            &c,
            "Q() :- Meetings(x, y), Meetings(y, z), Meetings(z, x), Contacts(x, y, z)",
        ));
        assert!(gyo_reduce(raw(&interner, id)).is_some());
    }

    #[test]
    fn semi_join_agrees_with_backtracking_on_acyclic_pairs() {
        let c = catalog();
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q() :- Meetings(z, z)",
            "Q() :- Meetings(9, 'Jim')",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern'), Contacts(y, u, 'Manager')",
            "Q(x) :- Meetings(x, y), Meetings(y, z), Meetings(z, w)",
        ];
        let mut interner = QueryInterner::new();
        let ids: Vec<QueryId> = texts.iter().map(|t| interner.intern(&q(&c, t))).collect();
        for policy in [
            HeadPolicy::Identity,
            HeadPolicy::DistinguishedToDistinguished,
            HeadPolicy::Free,
        ] {
            for &ia in &ids {
                let from = raw(&interner, ia);
                let ears = gyo_reduce(from).expect("workload shapes are acyclic");
                for &ib in &ids {
                    let to = raw(&interner, ib);
                    assert_eq!(
                        semi_join_homomorphism_into(from, &ears, to.atoms, to, policy),
                        interned_homomorphism_exists_generic(from, to, policy),
                        "disagreement under {policy:?} on {ia:?} -> {ib:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_queries_are_trivially_acyclic() {
        let query = QueryRef {
            atoms: &[],
            terms: &[],
            kinds: &[],
            ears: None,
        };
        assert_eq!(gyo_reduce(query), Some(Vec::new()));
        assert!(semi_join_homomorphism_into(
            query,
            &[],
            &[],
            query,
            HeadPolicy::Free
        ));
    }

    #[test]
    fn dispatch_toggle_round_trips() {
        assert!(dispatch_enabled());
        set_dispatch_enabled(false);
        assert!(!dispatch_enabled());
        set_dispatch_enabled(true);
        assert!(dispatch_enabled());
    }
}
