//! Relational schemas: relation names, attribute names, and arities.
//!
//! A [`Catalog`] plays the role of the "schema of a fixed database D" from
//! Section 2.3 of the paper.  Queries and security views are always defined
//! against a catalog; the catalog assigns each relation a dense [`RelId`]
//! which the rest of the system uses for cheap hashing, array indexing and
//! the packed bit-vector label representation of Section 6.1.

use std::collections::HashMap;
use std::fmt;

use crate::error::{CqError, Result};

/// Identifier of a relation within a [`Catalog`].
///
/// Ids are dense (0, 1, 2, …) in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// Returns the id as a usize, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel#{}", self.0)
    }
}

/// Schema of a single relation: its name and attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, e.g. `"Meetings"`.
    pub name: String,
    /// Attribute names in positional order, e.g. `["time", "person"]`.
    pub attributes: Vec<String>,
}

impl RelationSchema {
    /// Number of attributes (arity) of the relation.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Returns the position of an attribute by name, if present.
    pub fn attribute_position(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }
}

/// A relational schema: an ordered collection of [`RelationSchema`]s.
///
/// # Example
///
/// ```
/// use fdc_cq::Catalog;
///
/// let mut catalog = Catalog::new();
/// let meetings = catalog.add_relation("Meetings", &["time", "person"]).unwrap();
/// let contacts = catalog.add_relation("Contacts", &["person", "email", "position"]).unwrap();
///
/// assert_eq!(catalog.relation(meetings).name, "Meetings");
/// assert_eq!(catalog.relation(contacts).arity(), 3);
/// assert_eq!(catalog.resolve("Meetings"), Some(meetings));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a relation with the given attribute names.
    ///
    /// Returns the fresh [`RelId`].  Fails with
    /// [`CqError::DuplicateRelation`] if the name is already taken.
    pub fn add_relation<S: AsRef<str>>(&mut self, name: &str, attributes: &[S]) -> Result<RelId> {
        if self.by_name.contains_key(name) {
            return Err(CqError::DuplicateRelation(name.to_owned()));
        }
        let id = RelId(self.relations.len() as u32);
        self.relations.push(RelationSchema {
            name: name.to_owned(),
            attributes: attributes.iter().map(|a| a.as_ref().to_owned()).collect(),
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Registers a relation with synthetic attribute names `a0, a1, …`.
    ///
    /// Useful for generated schemas where attribute names do not matter.
    pub fn add_relation_with_arity(&mut self, name: &str, arity: usize) -> Result<RelId> {
        let attrs: Vec<String> = (0..arity).map(|i| format!("a{i}")).collect();
        self.add_relation(name, &attrs)
    }

    /// Looks up a relation id by name.
    pub fn resolve(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Returns the schema of a relation.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this catalog.
    pub fn relation(&self, id: RelId) -> &RelationSchema {
        &self.relations[id.index()]
    }

    /// Returns the arity of a relation.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this catalog.
    pub fn arity(&self, id: RelId) -> usize {
        self.relations[id.index()].arity()
    }

    /// Returns the name of a relation.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this catalog.
    pub fn name(&self, id: RelId) -> &str {
        &self.relations[id.index()].name
    }

    /// Number of relations in the catalog.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the catalog has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over `(RelId, &RelationSchema)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// Builds the Meetings/Contacts example catalog from Figure 1 of the paper.
    ///
    /// `Meetings(time, person)` and `Contacts(person, email, position)`.
    pub fn paper_example() -> Self {
        let mut c = Catalog::new();
        c.add_relation("Meetings", &["time", "person"])
            .expect("fresh catalog");
        c.add_relation("Contacts", &["person", "email", "position"])
            .expect("fresh catalog");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_resolve_relations() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        let m = c.add_relation("Meetings", &["time", "person"]).unwrap();
        let k = c
            .add_relation("Contacts", &["person", "email", "position"])
            .unwrap();
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(m, RelId(0));
        assert_eq!(k, RelId(1));
        assert_eq!(c.resolve("Meetings"), Some(m));
        assert_eq!(c.resolve("Contacts"), Some(k));
        assert_eq!(c.resolve("Nope"), None);
        assert_eq!(c.name(m), "Meetings");
        assert_eq!(c.arity(k), 3);
        assert_eq!(c.relation(k).attribute_position("email"), Some(1));
        assert_eq!(c.relation(k).attribute_position("missing"), None);
    }

    #[test]
    fn duplicate_relation_is_rejected() {
        let mut c = Catalog::new();
        c.add_relation("User", &["uid"]).unwrap();
        let err = c.add_relation("User", &["uid", "name"]).unwrap_err();
        assert_eq!(err, CqError::DuplicateRelation("User".into()));
        // The failed insertion must not have modified the catalog.
        assert_eq!(c.len(), 1);
        assert_eq!(c.arity(RelId(0)), 1);
    }

    #[test]
    fn synthetic_attribute_names() {
        let mut c = Catalog::new();
        let r = c.add_relation_with_arity("Wide", 4).unwrap();
        assert_eq!(c.relation(r).attributes, vec!["a0", "a1", "a2", "a3"]);
        assert_eq!(c.arity(r), 4);
    }

    #[test]
    fn iteration_preserves_registration_order() {
        let mut c = Catalog::new();
        c.add_relation("A", &["x"]).unwrap();
        c.add_relation("B", &["x", "y"]).unwrap();
        let names: Vec<&str> = c.iter().map(|(_, r)| r.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
        let ids: Vec<RelId> = c.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![RelId(0), RelId(1)]);
    }

    #[test]
    fn paper_example_catalog_matches_figure_1() {
        let c = Catalog::paper_example();
        assert_eq!(c.len(), 2);
        let m = c.resolve("Meetings").unwrap();
        let k = c.resolve("Contacts").unwrap();
        assert_eq!(c.arity(m), 2);
        assert_eq!(c.arity(k), 3);
        assert_eq!(c.relation(m).attributes, vec!["time", "person"]);
        assert_eq!(
            c.relation(k).attributes,
            vec!["person", "email", "position"]
        );
    }

    #[test]
    fn rel_id_display_and_index() {
        assert_eq!(RelId(3).to_string(), "rel#3");
        assert_eq!(RelId(3).index(), 3);
    }
}
