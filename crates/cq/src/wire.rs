//! Binary wire format for catalogs and boxed conjunctive queries — the
//! `fdc-cq` piece of the durable state plane.
//!
//! Everything here round-trips through the length-checked
//! [`fdc_durability::codec`] primitives: encoding appends to a
//! `Vec<u8>`, decoding reads through a [`Cursor`] and reports failures
//! as [`CodecError`]s with byte offsets instead of panicking.  Decoded
//! queries pass through [`ConjunctiveQuery::from_parts`], so a
//! checkpoint (or WAL record) can never materialize a query the
//! constructor would have rejected.

use fdc_durability::codec::put_len;
use fdc_durability::codec::{put_i64, put_str, put_u32, put_u8, CodecError, Cursor};

use crate::atom::Atom;
use crate::catalog::{Catalog, RelId};
use crate::query::ConjunctiveQuery;
use crate::term::{Constant, Term, VarId, VarKind};

const CONST_INT: u8 = 0;
const CONST_STR: u8 = 1;
const TERM_VAR: u8 = 0;
const TERM_CONST: u8 = 1;
const KIND_DISTINGUISHED: u8 = 0;
const KIND_EXISTENTIAL: u8 = 1;

/// Encodes one [`Constant`].
pub fn put_constant(out: &mut Vec<u8>, constant: &Constant) {
    match constant {
        Constant::Int(i) => {
            put_u8(out, CONST_INT);
            put_i64(out, *i);
        }
        Constant::Str(s) => {
            put_u8(out, CONST_STR);
            put_str(out, s);
        }
    }
}

/// Decodes one [`Constant`].
pub fn read_constant(cursor: &mut Cursor<'_>) -> Result<Constant, CodecError> {
    let at = cursor.pos();
    match cursor.u8()? {
        CONST_INT => Ok(Constant::Int(cursor.i64()?)),
        CONST_STR => Ok(Constant::Str(cursor.str()?.to_owned())),
        tag => Err(CodecError::invalid(
            at,
            format!("unknown constant tag {tag}"),
        )),
    }
}

/// Encodes one [`VarKind`] as a byte.
pub fn put_var_kind(out: &mut Vec<u8>, kind: VarKind) {
    put_u8(
        out,
        match kind {
            VarKind::Distinguished => KIND_DISTINGUISHED,
            VarKind::Existential => KIND_EXISTENTIAL,
        },
    );
}

/// Decodes one [`VarKind`].
pub fn read_var_kind(cursor: &mut Cursor<'_>) -> Result<VarKind, CodecError> {
    let at = cursor.pos();
    match cursor.u8()? {
        KIND_DISTINGUISHED => Ok(VarKind::Distinguished),
        KIND_EXISTENTIAL => Ok(VarKind::Existential),
        tag => Err(CodecError::invalid(
            at,
            format!("unknown variable-kind tag {tag}"),
        )),
    }
}

/// Encodes a [`Catalog`]: every relation in id order, with its name and
/// full attribute names (so a decoded catalog resolves exactly like the
/// original).
pub fn encode_catalog(catalog: &Catalog, out: &mut Vec<u8>) {
    put_len(out, catalog.len());
    for (_, schema) in catalog.iter() {
        put_str(out, &schema.name);
        put_len(out, schema.attributes.len());
        for attribute in &schema.attributes {
            put_str(out, attribute);
        }
    }
}

/// Decodes a [`Catalog`], reassigning the same dense [`RelId`]s the
/// encoder saw.
pub fn decode_catalog(cursor: &mut Cursor<'_>) -> Result<Catalog, CodecError> {
    let num_relations = cursor.count(9)?;
    let mut catalog = Catalog::new();
    for _ in 0..num_relations {
        let at = cursor.pos();
        let name = cursor.str()?.to_owned();
        let num_attributes = cursor.count(8)?;
        let mut attributes = Vec::with_capacity(num_attributes);
        for _ in 0..num_attributes {
            attributes.push(cursor.str()?.to_owned());
        }
        catalog
            .add_relation(&name, &attributes)
            .map_err(|err| CodecError::invalid(at, format!("invalid relation: {err}")))?;
    }
    Ok(catalog)
}

/// Encodes a boxed [`ConjunctiveQuery`] with full fidelity — variable
/// kinds, display names, atom order, constants — so `decode` returns a
/// query `Eq`-identical to the input.
pub fn encode_query(query: &ConjunctiveQuery, out: &mut Vec<u8>) {
    put_len(out, query.num_vars());
    for kind in query.var_kinds() {
        put_var_kind(out, *kind);
    }
    for v in 0..query.num_vars() {
        put_str(out, query.var_name(VarId(v as u32)));
    }
    put_len(out, query.num_atoms());
    for atom in query.atoms() {
        put_u32(out, atom.relation.0);
        put_len(out, atom.terms.len());
        for term in &atom.terms {
            match term {
                Term::Var(v, _) => {
                    put_u8(out, TERM_VAR);
                    put_u32(out, v.0);
                }
                Term::Const(c) => {
                    put_u8(out, TERM_CONST);
                    put_constant(out, c);
                }
            }
        }
    }
}

/// Decodes a [`ConjunctiveQuery`], re-validating it through
/// [`ConjunctiveQuery::from_parts`].
pub fn decode_query(cursor: &mut Cursor<'_>) -> Result<ConjunctiveQuery, CodecError> {
    let start = cursor.pos();
    let num_vars = cursor.count(1)?;
    let mut kinds = Vec::with_capacity(num_vars);
    for _ in 0..num_vars {
        kinds.push(read_var_kind(cursor)?);
    }
    let mut names = Vec::with_capacity(num_vars);
    for _ in 0..num_vars {
        names.push(cursor.str()?.to_owned());
    }
    let num_atoms = cursor.count(12)?;
    let mut atoms = Vec::with_capacity(num_atoms);
    for _ in 0..num_atoms {
        let relation = RelId(cursor.u32()?);
        let num_terms = cursor.count(5)?;
        let mut terms = Vec::with_capacity(num_terms);
        for _ in 0..num_terms {
            let at = cursor.pos();
            match cursor.u8()? {
                TERM_VAR => {
                    let v = cursor.u32()? as usize;
                    if v >= num_vars {
                        return Err(CodecError::invalid(
                            at,
                            format!("variable index {v} out of range ({num_vars} vars)"),
                        ));
                    }
                    terms.push(Term::Var(VarId(v as u32), kinds[v]));
                }
                TERM_CONST => terms.push(Term::Const(read_constant(cursor)?)),
                tag => {
                    return Err(CodecError::invalid(at, format!("unknown term tag {tag}")));
                }
            }
        }
        atoms.push(Atom::new(relation, terms));
    }
    ConjunctiveQuery::from_parts(atoms, kinds, names)
        .map_err(|err| CodecError::invalid(start, format!("invalid query: {err}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn catalog_round_trips_with_identical_ids() {
        let catalog = Catalog::paper_example();
        let mut out = Vec::new();
        encode_catalog(&catalog, &mut out);
        let mut cursor = Cursor::new(&out);
        let back = decode_catalog(&mut cursor).unwrap();
        cursor.expect_end().unwrap();
        assert_eq!(back.len(), catalog.len());
        for (id, schema) in catalog.iter() {
            assert_eq!(back.resolve(&schema.name), Some(id));
            assert_eq!(back.relation(id).attributes, schema.attributes);
        }
    }

    #[test]
    fn queries_round_trip_eq_identical() {
        let catalog = Catalog::paper_example();
        for text in [
            "Q(x) :- Meetings(x, y)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q() :- Meetings(z, z)",
            "Q(a) :- Meetings(a, 9)",
        ] {
            let query = parse_query(&catalog, text).unwrap();
            let mut out = Vec::new();
            encode_query(&query, &mut out);
            let mut cursor = Cursor::new(&out);
            let back = decode_query(&mut cursor).unwrap();
            cursor.expect_end().unwrap();
            assert_eq!(back, query, "round trip changed {text}");
        }
    }

    #[test]
    fn truncated_query_bytes_are_an_error_not_a_panic() {
        let catalog = Catalog::paper_example();
        let query = parse_query(&catalog, "Q(x) :- Meetings(x, 'Cathy')").unwrap();
        let mut out = Vec::new();
        encode_query(&query, &mut out);
        for cut in 0..out.len() {
            let mut cursor = Cursor::new(&out[..cut]);
            assert!(decode_query(&mut cursor).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn out_of_range_variable_is_rejected() {
        let catalog = Catalog::paper_example();
        let query = parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap();
        let mut out = Vec::new();
        encode_query(&query, &mut out);
        // The last term is Var(1): bump its index out of range.
        let len = out.len();
        out[len - 4..].copy_from_slice(&9u32.to_le_bytes());
        let mut cursor = Cursor::new(&out);
        assert!(decode_query(&mut cursor).is_err());
    }
}
