//! A small datalog-style parser for the paper's query notation.
//!
//! The grammar accepted is the notation used throughout the paper:
//!
//! ```text
//! V2(x)      :- Meetings(x, y)
//! Q2(x)      :- Meetings(x, y) ∧ Contacts(y, w, 'Intern')
//! Q2(x)      :- Meetings(x, y), Contacts(y, w, 'Intern')
//! V13()      :- Meetings(9, 'Jim')
//! ```
//!
//! * The head determines which variables are *distinguished*; every other
//!   variable is *existential*.
//! * Body atoms are separated by `,` or `∧` (or `&`).
//! * Constants are single- or double-quoted strings, or integers.
//! * Bare identifiers are variables.
//! * Relation names are resolved against a [`Catalog`]; arities are checked.

use crate::atom::Atom;
use crate::catalog::Catalog;
use crate::error::{CqError, Result};
use crate::query::ConjunctiveQuery;
use crate::term::{Constant, Term, VarId, VarKind};
use std::collections::HashMap;

/// Parses a conjunctive query in datalog notation against a catalog.
///
/// See the [module documentation](self) for the accepted grammar.
pub fn parse_query(catalog: &Catalog, input: &str) -> Result<ConjunctiveQuery> {
    Parser::new(input).parse(catalog)
}

/// Parses several `;`- or newline-separated queries.
///
/// Blank lines and lines starting with `#` or `%` are ignored, which makes it
/// convenient to keep a set of security views in a small text block:
///
/// ```
/// use fdc_cq::{Catalog, parser::parse_program};
///
/// let catalog = Catalog::paper_example();
/// let views = parse_program(&catalog, r"
///     % Figure 1 (b)
///     V1(x, y) :- Meetings(x, y)
///     V2(x)    :- Meetings(x, y)
///     V3(x, y, z) :- Contacts(x, y, z)
/// ").unwrap();
/// assert_eq!(views.len(), 3);
/// assert_eq!(views[1].0, "V2");
/// ```
pub fn parse_program(catalog: &Catalog, input: &str) -> Result<Vec<(String, ConjunctiveQuery)>> {
    let mut out = Vec::new();
    for raw_line in input.split(['\n', ';']) {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parser = Parser::new(line);
        let name = parser.peek_head_name()?;
        let query = parser.parse(catalog)?;
        out.push((name, query));
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Turnstile, // ":-"
    And,       // "∧" or "&"
}

struct Parser<'a> {
    input: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            tokens: Vec::new(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> CqError {
        CqError::Parse(format!("{} (in `{}`)", msg.into(), self.input.trim()))
    }

    fn tokenize(&mut self) -> Result<()> {
        if !self.tokens.is_empty() {
            return Ok(());
        }
        let mut chars = self.input.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            match c {
                ' ' | '\t' | '\r' | '\n' => {}
                '(' => self.tokens.push(Token::LParen),
                ')' => self.tokens.push(Token::RParen),
                ',' => self.tokens.push(Token::Comma),
                '∧' => self.tokens.push(Token::And),
                '&' => {
                    // Accept both `&` and `&&`.
                    if matches!(chars.peek(), Some((_, '&'))) {
                        chars.next();
                    }
                    self.tokens.push(Token::And);
                }
                ':' => match chars.next() {
                    Some((_, '-')) => self.tokens.push(Token::Turnstile),
                    _ => return Err(self.err(format!("expected `:-` at byte {i}"))),
                },
                '\'' | '"' => {
                    let quote = c;
                    let mut s = String::new();
                    let mut closed = false;
                    for (_, c2) in chars.by_ref() {
                        if c2 == quote {
                            closed = true;
                            break;
                        }
                        s.push(c2);
                    }
                    if !closed {
                        return Err(self.err("unterminated string constant"));
                    }
                    self.tokens.push(Token::Str(s));
                }
                c if c.is_ascii_digit() || c == '-' => {
                    let mut s = String::new();
                    s.push(c);
                    while let Some((_, c2)) = chars.peek() {
                        if c2.is_ascii_digit() {
                            s.push(*c2);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let value: i64 = s
                        .parse()
                        .map_err(|_| self.err(format!("invalid integer `{s}`")))?;
                    self.tokens.push(Token::Int(value));
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    s.push(c);
                    while let Some((_, c2)) = chars.peek() {
                        if c2.is_alphanumeric() || *c2 == '_' {
                            s.push(*c2);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    self.tokens.push(Token::Ident(s));
                }
                other => return Err(self.err(format!("unexpected character `{other}`"))),
            }
        }
        Ok(())
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next_token(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<()> {
        match self.next_token() {
            Some(ref t) if t == expected => Ok(()),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.next_token() {
            Some(Token::Ident(s)) => Ok(s),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    /// Returns the head name without consuming tokens (used by
    /// [`parse_program`] to recover view names).
    fn peek_head_name(&mut self) -> Result<String> {
        self.tokenize()?;
        match self.tokens.first() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            _ => Err(self.err("expected a head predicate name")),
        }
    }

    fn parse(mut self, catalog: &Catalog) -> Result<ConjunctiveQuery> {
        self.tokenize()?;

        // ---- head -----------------------------------------------------
        let _head_name = self.expect_ident("a head predicate name")?;
        self.expect(&Token::LParen, "`(`")?;
        let mut head_vars: Vec<String> = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                match self.next_token() {
                    Some(Token::Ident(v)) => head_vars.push(v),
                    Some(t) => {
                        return Err(
                            self.err(format!("head arguments must be variables, found {t:?}"))
                        )
                    }
                    None => return Err(self.err("unterminated head")),
                }
                match self.peek() {
                    Some(Token::Comma) => {
                        self.next_token();
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Token::RParen, "`)` closing the head")?;
        self.expect(&Token::Turnstile, "`:-`")?;

        // ---- body -----------------------------------------------------
        let mut names: HashMap<String, VarId> = HashMap::new();
        let mut var_names: Vec<String> = Vec::new();
        let mut var_kinds: Vec<VarKind> = Vec::new();
        let declare = |name: &str,
                       names: &mut HashMap<String, VarId>,
                       var_names: &mut Vec<String>,
                       var_kinds: &mut Vec<VarKind>|
         -> VarId {
            if let Some(&v) = names.get(name) {
                return v;
            }
            let id = VarId(var_names.len() as u32);
            let kind = if head_vars.iter().any(|h| h == name) {
                VarKind::Distinguished
            } else {
                VarKind::Existential
            };
            var_names.push(name.to_owned());
            var_kinds.push(kind);
            names.insert(name.to_owned(), id);
            id
        };

        let mut atoms: Vec<Atom> = Vec::new();
        loop {
            let rel_name = self.expect_ident("a relation name")?;
            let relation = catalog
                .resolve(&rel_name)
                .ok_or_else(|| CqError::UnknownRelation(rel_name.clone()))?;
            self.expect(&Token::LParen, "`(`")?;
            let mut terms: Vec<Term> = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    match self.next_token() {
                        Some(Token::Ident(v)) => {
                            let id = declare(&v, &mut names, &mut var_names, &mut var_kinds);
                            terms.push(Term::Var(id, var_kinds[id.index()]));
                        }
                        Some(Token::Str(s)) => terms.push(Term::Const(Constant::Str(s))),
                        Some(Token::Int(i)) => terms.push(Term::Const(Constant::Int(i))),
                        Some(t) => return Err(self.err(format!("unexpected token {t:?} in atom"))),
                        None => return Err(self.err("unterminated atom")),
                    }
                    match self.peek() {
                        Some(Token::Comma) => {
                            self.next_token();
                        }
                        _ => break,
                    }
                }
            }
            self.expect(&Token::RParen, "`)` closing the atom")?;
            let atom = Atom::new(relation, terms);
            atom.validate(catalog)?;
            atoms.push(atom);

            match self.peek() {
                Some(Token::Comma) | Some(Token::And) => {
                    self.next_token();
                }
                None => break,
                Some(t) => return Err(self.err(format!("unexpected token {t:?} after atom"))),
            }
        }

        // Every head variable must appear in the body (safety).
        for h in &head_vars {
            if !names.contains_key(h) {
                return Err(CqError::UnsafeHeadVariable(h.clone()));
            }
        }

        ConjunctiveQuery::from_parts(atoms, var_kinds, var_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarKind;

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    #[test]
    fn parses_figure_1_views_and_queries() {
        let c = catalog();
        let v1 = parse_query(&c, "V1(x, y) :- Meetings(x, y)").unwrap();
        assert_eq!(v1.num_atoms(), 1);
        assert_eq!(v1.distinguished_vars().count(), 2);

        let v2 = parse_query(&c, "V2(x) :- Meetings(x, y)").unwrap();
        assert_eq!(v2.distinguished_vars().count(), 1);
        assert_eq!(v2.existential_vars().count(), 1);

        let q1 = parse_query(&c, "Q1(x) :- Meetings(x, 'Cathy')").unwrap();
        assert!(q1.atoms()[0].has_constants());

        let q2 = parse_query(&c, "Q2(x) :- Meetings(x, y) ∧ Contacts(y, w, 'Intern')").unwrap();
        assert_eq!(q2.num_atoms(), 2);
        assert_eq!(q2.existential_vars().count(), 2);

        // Comma-separated body means the same thing.
        let q2b = parse_query(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        assert_eq!(q2, q2b);
        // `&` works too.
        let q2c = parse_query(&c, "Q2(x) :- Meetings(x, y) & Contacts(y, w, 'Intern')").unwrap();
        assert_eq!(q2, q2c);
    }

    #[test]
    fn parses_boolean_and_constant_queries() {
        let c = catalog();
        let v5 = parse_query(&c, "V5() :- Meetings(x, y)").unwrap();
        assert!(v5.is_boolean());

        let v13 = parse_query(&c, "V13() :- Meetings(9, 'Jim')").unwrap();
        assert!(v13.is_boolean());
        assert_eq!(v13.num_vars(), 0);
        assert!(v13.atoms()[0].has_constants());

        let neg = parse_query(&c, "V() :- Meetings(-3, y)").unwrap();
        assert_eq!(neg.atoms()[0].terms[0], Term::Const(Constant::Int(-3)));
    }

    #[test]
    fn double_quotes_and_repeated_vars() {
        let c = catalog();
        let q = parse_query(&c, r#"V(x) :- Contacts(x, x, "Intern")"#).unwrap();
        assert!(q.atoms()[0].has_repeated_vars());
        assert_eq!(q.var_kind(VarId(0)), VarKind::Distinguished);
    }

    #[test]
    fn head_variable_kinds_follow_the_head() {
        let c = catalog();
        let q = parse_query(&c, "V6(x, y) :- Contacts(x, y, z)").unwrap();
        let kinds: Vec<VarKind> = (0..q.num_vars() as u32)
            .map(|i| q.var_kind(VarId(i)))
            .collect();
        assert_eq!(
            kinds,
            vec![
                VarKind::Distinguished,
                VarKind::Distinguished,
                VarKind::Existential
            ]
        );
    }

    #[test]
    fn round_trips_through_display() {
        let c = catalog();
        let text = "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')";
        let q = parse_query(&c, text).unwrap();
        assert_eq!(q.display_with(&c).to_string(), text);
        let reparsed = parse_query(&c, &q.display_with(&c).to_string()).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn unknown_relation_is_reported() {
        let c = catalog();
        let err = parse_query(&c, "Q(x) :- Nothing(x)").unwrap_err();
        assert_eq!(err, CqError::UnknownRelation("Nothing".into()));
    }

    #[test]
    fn arity_errors_are_reported() {
        let c = catalog();
        let err = parse_query(&c, "Q(x) :- Meetings(x)").unwrap_err();
        assert!(matches!(err, CqError::ArityMismatch { .. }));
    }

    #[test]
    fn unsafe_head_variable_is_reported() {
        let c = catalog();
        let err = parse_query(&c, "Q(z) :- Meetings(x, y)").unwrap_err();
        assert_eq!(err, CqError::UnsafeHeadVariable("z".into()));
    }

    #[test]
    fn malformed_inputs_are_parse_errors() {
        let c = catalog();
        for bad in [
            "",
            "Q(x)",
            "Q(x) : Meetings(x, y)",
            "Q(x) :- Meetings(x, y",
            "Q(x) :- Meetings(x, 'unclosed)",
            "Q('c') :- Meetings(x, y)",
            "Q(x) :- Meetings(x, y) extra",
            "Q(x) :- Meetings(x, !)",
        ] {
            let err = parse_query(&c, bad).unwrap_err();
            assert!(
                matches!(err, CqError::Parse(_) | CqError::EmptyBody),
                "input `{bad}` should fail with a parse error, got {err:?}"
            );
        }
    }

    #[test]
    fn parse_program_collects_named_views() {
        let c = catalog();
        let views = parse_program(
            &c,
            r"
            # security views from Figure 1 (b)
            V1(x, y) :- Meetings(x, y)
            V2(x)    :- Meetings(x, y)
            % a comment in a different style
            V3(x, y, z) :- Contacts(x, y, z); V5() :- Meetings(x, y)
            ",
        )
        .unwrap();
        let names: Vec<&str> = views.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["V1", "V2", "V3", "V5"]);
        assert!(views[3].1.is_boolean());
    }

    #[test]
    fn parse_program_propagates_errors() {
        let c = catalog();
        assert!(parse_program(&c, "V1(x, y) :- Missing(x, y)").is_err());
        assert!(parse_program(&c, "garbage").is_err());
    }
}
