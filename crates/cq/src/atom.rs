//! Relational atoms: a relation symbol applied to a list of terms.

use std::fmt;

use crate::catalog::{Catalog, RelId};
use crate::error::{CqError, Result};
use crate::term::{Term, VarId};

/// A relational atom `R(t1, …, tn)` over the relations of a [`Catalog`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The relation this atom refers to.
    pub relation: RelId,
    /// Positional arguments.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a relation id and its arguments.
    pub fn new(relation: RelId, terms: Vec<Term>) -> Self {
        Atom { relation, terms }
    }

    /// Number of arguments.
    #[inline]
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the variable ids appearing in the atom (with repeats).
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().filter_map(Term::var_id)
    }

    /// True if the atom contains the given variable.
    pub fn contains_var(&self, var: VarId) -> bool {
        self.variables().any(|v| v == var)
    }

    /// True if any argument is a constant.
    pub fn has_constants(&self) -> bool {
        self.terms.iter().any(Term::is_const)
    }

    /// True if some variable occurs in more than one argument position.
    ///
    /// Repeated variables encode equality selections, which matter for the
    /// `GLBSingleton` corner-case check of Example 5.3 in the paper.
    pub fn has_repeated_vars(&self) -> bool {
        let vars: Vec<VarId> = self.variables().collect();
        for (i, v) in vars.iter().enumerate() {
            if vars[i + 1..].contains(v) {
                return true;
            }
        }
        false
    }

    /// Checks that the atom's arity matches the catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        let expected = catalog.arity(self.relation);
        if expected != self.arity() {
            return Err(CqError::ArityMismatch {
                relation: catalog.name(self.relation).to_owned(),
                expected,
                found: self.arity(),
            });
        }
        Ok(())
    }

    /// Renders the atom using the catalog for the relation name and the
    /// provided variable-name lookup.
    pub fn display_with<'a>(
        &'a self,
        catalog: &'a Catalog,
        var_name: impl Fn(VarId) -> String + 'a,
    ) -> impl fmt::Display + 'a {
        struct D<'a, F> {
            atom: &'a Atom,
            catalog: &'a Catalog,
            var_name: F,
        }
        impl<F: Fn(VarId) -> String> fmt::Display for D<'_, F> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.catalog.name(self.atom.relation))?;
                for (i, t) in self.atom.terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match t {
                        Term::Var(v, _) => write!(f, "{}", (self.var_name)(*v))?,
                        Term::Const(c) => write!(f, "{c}")?,
                    }
                }
                write!(f, ")")
            }
        }
        D {
            atom: self,
            catalog,
            var_name,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Constant;

    fn meetings_catalog() -> (Catalog, RelId) {
        let mut c = Catalog::new();
        let m = c.add_relation("Meetings", &["time", "person"]).unwrap();
        (c, m)
    }

    #[test]
    fn arity_and_variable_iteration() {
        let (_, m) = meetings_catalog();
        let atom = Atom::new(m, vec![Term::dist(0), Term::exist(1)]);
        assert_eq!(atom.arity(), 2);
        let vars: Vec<VarId> = atom.variables().collect();
        assert_eq!(vars, vec![VarId(0), VarId(1)]);
        assert!(atom.contains_var(VarId(0)));
        assert!(!atom.contains_var(VarId(2)));
        assert!(!atom.has_constants());
        assert!(!atom.has_repeated_vars());
    }

    #[test]
    fn constants_and_repeated_vars_are_detected() {
        let (_, m) = meetings_catalog();
        let with_const = Atom::new(m, vec![Term::dist(0), Term::constant("Cathy")]);
        assert!(with_const.has_constants());
        assert!(!with_const.has_repeated_vars());

        let repeated = Atom::new(m, vec![Term::exist(0), Term::exist(0)]);
        assert!(repeated.has_repeated_vars());
        assert!(!repeated.has_constants());
    }

    #[test]
    fn validation_checks_arity_against_catalog() {
        let (c, m) = meetings_catalog();
        let ok = Atom::new(m, vec![Term::dist(0), Term::dist(1)]);
        assert!(ok.validate(&c).is_ok());

        let bad = Atom::new(m, vec![Term::dist(0)]);
        let err = bad.validate(&c).unwrap_err();
        assert_eq!(
            err,
            CqError::ArityMismatch {
                relation: "Meetings".into(),
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn display_formats() {
        let (c, m) = meetings_catalog();
        let atom = Atom::new(
            m,
            vec![Term::dist(0), Term::Const(Constant::Str("Cathy".into()))],
        );
        // Debug-oriented Display (no catalog).
        assert_eq!(atom.to_string(), "rel#0(v0d, 'Cathy')");
        // Pretty Display with catalog and custom names.
        let pretty = atom.display_with(&c, |v| format!("x{}", v.0)).to_string();
        assert_eq!(pretty, "Meetings(x0, 'Cathy')");
    }
}
