//! In-memory database instances and conjunctive-query evaluation.
//!
//! The disclosure framework reasons about queries symbolically, but a small
//! executable semantics is invaluable: it lets the test suite validate the
//! symbolic machinery (containment, folding, rewriting) against actual query
//! answers on concrete data, and it lets the examples show real answers
//! flowing — or not flowing — to an app.
//!
//! [`Database`] stores one set of tuples per relation of a [`Catalog`];
//! [`evaluate`] computes the answer of a [`ConjunctiveQuery`] under the
//! standard set semantics used by the paper: an answer is one binding of the
//! distinguished variables (in [`ConjunctiveQuery::head_vars`] order) such
//! that some extension to the existential variables satisfies every body
//! atom.

use std::collections::{BTreeSet, HashMap};

use crate::catalog::{Catalog, RelId};
use crate::error::{CqError, Result};
use crate::query::ConjunctiveQuery;
use crate::term::{Constant, Term, VarId};

/// A tuple of constants.
pub type Tuple = Vec<Constant>;

/// An in-memory database instance over a catalog.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: HashMap<RelId, BTreeSet<Tuple>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts a tuple into a relation, validating its arity against the
    /// catalog.
    pub fn insert<T>(&mut self, catalog: &Catalog, relation: RelId, tuple: T) -> Result<()>
    where
        T: IntoIterator,
        T::Item: Into<Constant>,
    {
        let tuple: Tuple = tuple.into_iter().map(Into::into).collect();
        let expected = catalog.arity(relation);
        if tuple.len() != expected {
            return Err(CqError::ArityMismatch {
                relation: catalog.name(relation).to_owned(),
                expected,
                found: tuple.len(),
            });
        }
        self.relations.entry(relation).or_default().insert(tuple);
        Ok(())
    }

    /// The tuples of a relation (empty if none were inserted).
    pub fn tuples(&self, relation: RelId) -> impl Iterator<Item = &Tuple> {
        self.relations.get(&relation).into_iter().flatten()
    }

    /// Number of tuples in a relation.
    pub fn cardinality(&self, relation: RelId) -> usize {
        self.relations.get(&relation).map_or(0, BTreeSet::len)
    }

    /// Total number of tuples in the database.
    pub fn len(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// True if the database holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(BTreeSet::is_empty)
    }

    /// The Figure 1 (a) example instance: Alice's meetings and contacts.
    pub fn paper_example(catalog: &Catalog) -> Self {
        let meetings = catalog.resolve("Meetings").expect("paper catalog");
        let contacts = catalog.resolve("Contacts").expect("paper catalog");
        let mut db = Database::new();
        for (time, person) in [(9i64, "Jim"), (10, "Cathy"), (12, "Bob")] {
            db.insert(
                catalog,
                meetings,
                [Constant::from(time), Constant::from(person)],
            )
            .expect("valid tuple");
        }
        for (person, email, position) in [
            ("Jim", "jim@e.com", "Manager"),
            ("Cathy", "cathy@e.com", "Intern"),
            ("Bob", "bob@e.com", "Consultant"),
        ] {
            db.insert(
                catalog,
                contacts,
                [
                    Constant::from(person),
                    Constant::from(email),
                    Constant::from(position),
                ],
            )
            .expect("valid tuple");
        }
        db
    }
}

/// Evaluates a conjunctive query on a database.
///
/// The answer is the set of bindings of the distinguished variables, ordered
/// as [`ConjunctiveQuery::head_vars`].  A boolean query returns either one
/// empty tuple (true) or no tuples (false).
pub fn evaluate(query: &ConjunctiveQuery, db: &Database) -> BTreeSet<Tuple> {
    let head = query.head_vars();
    let mut answers = BTreeSet::new();
    let mut binding: HashMap<VarId, Constant> = HashMap::new();
    eval_rec(query, db, 0, &mut binding, &head, &mut answers);
    answers
}

/// True if the query has at least one answer on the database.
pub fn satisfiable(query: &ConjunctiveQuery, db: &Database) -> bool {
    !evaluate(query, db).is_empty()
}

fn eval_rec(
    query: &ConjunctiveQuery,
    db: &Database,
    atom_index: usize,
    binding: &mut HashMap<VarId, Constant>,
    head: &[VarId],
    answers: &mut BTreeSet<Tuple>,
) {
    let Some(atom) = query.atoms().get(atom_index) else {
        let answer: Tuple = head
            .iter()
            .map(|v| {
                binding
                    .get(v)
                    .expect("head variables are bound by safety")
                    .clone()
            })
            .collect();
        answers.insert(answer);
        return;
    };
    'tuples: for tuple in db.tuples(atom.relation) {
        if tuple.len() != atom.arity() {
            continue;
        }
        let mut newly_bound: Vec<VarId> = Vec::new();
        for (term, value) in atom.terms.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        for v in newly_bound.drain(..) {
                            binding.remove(&v);
                        }
                        continue 'tuples;
                    }
                }
                Term::Var(v, _) => match binding.get(v) {
                    Some(bound) if bound != value => {
                        for v in newly_bound.drain(..) {
                            binding.remove(&v);
                        }
                        continue 'tuples;
                    }
                    Some(_) => {}
                    None => {
                        binding.insert(*v, value.clone());
                        newly_bound.push(*v);
                    }
                },
            }
        }
        eval_rec(query, db, atom_index + 1, binding, head, answers);
        for v in newly_bound {
            binding.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn setup() -> (Catalog, Database) {
        let catalog = Catalog::paper_example();
        let db = Database::paper_example(&catalog);
        (catalog, db)
    }

    fn tuple(values: &[&str]) -> Tuple {
        values.iter().map(|v| Constant::from(*v)).collect()
    }

    #[test]
    fn the_figure_1_instance_loads() {
        let (catalog, db) = setup();
        assert_eq!(db.len(), 6);
        assert!(!db.is_empty());
        assert_eq!(db.cardinality(catalog.resolve("Meetings").unwrap()), 3);
        assert_eq!(db.cardinality(catalog.resolve("Contacts").unwrap()), 3);
        assert!(Database::new().is_empty());
    }

    #[test]
    fn arity_is_validated_on_insert() {
        let (catalog, _) = setup();
        let meetings = catalog.resolve("Meetings").unwrap();
        let mut db = Database::new();
        let err = db
            .insert(&catalog, meetings, [Constant::from(9i64)])
            .unwrap_err();
        assert!(matches!(err, CqError::ArityMismatch { .. }));
        assert!(db.is_empty());
    }

    #[test]
    fn q1_returns_cathys_meeting_time() {
        // Q1(x) :- Meetings(x, 'Cathy') — Cathy is met at 10.
        let (catalog, db) = setup();
        let q1 = parse_query(&catalog, "Q1(x) :- Meetings(x, 'Cathy')").unwrap();
        let answers = evaluate(&q1, &db);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers.iter().next().unwrap(), &vec![Constant::Int(10)]);
    }

    #[test]
    fn q2_joins_meetings_with_interns() {
        // Q2(x) :- Meetings(x, y) ∧ Contacts(y, w, 'Intern') — only Cathy is
        // an intern, met at 10.
        let (catalog, db) = setup();
        let q2 = parse_query(
            &catalog,
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
        )
        .unwrap();
        let answers = evaluate(&q2, &db);
        assert_eq!(answers, BTreeSet::from([vec![Constant::Int(10)]]));
    }

    #[test]
    fn projections_and_boolean_queries() {
        let (catalog, db) = setup();
        let v2 = parse_query(&catalog, "V2(x) :- Meetings(x, y)").unwrap();
        let times = evaluate(&v2, &db);
        assert_eq!(
            times,
            BTreeSet::from([
                vec![Constant::Int(9)],
                vec![Constant::Int(10)],
                vec![Constant::Int(12)]
            ])
        );

        let v5 = parse_query(&catalog, "V5() :- Meetings(x, y)").unwrap();
        assert_eq!(evaluate(&v5, &db), BTreeSet::from([vec![]]));
        assert!(satisfiable(&v5, &db));

        // A query about someone who is never met is unsatisfiable.
        let nobody = parse_query(&catalog, "Q(x) :- Meetings(x, 'Nobody')").unwrap();
        assert!(!satisfiable(&nobody, &db));
        assert!(evaluate(&nobody, &db).is_empty());
    }

    #[test]
    fn head_order_follows_first_occurrence() {
        let (catalog, db) = setup();
        let v3 = parse_query(&catalog, "V3(x, y, z) :- Contacts(x, y, z)").unwrap();
        let answers = evaluate(&v3, &db);
        assert_eq!(answers.len(), 3);
        assert!(answers.contains(&tuple(&["Cathy", "cathy@e.com", "Intern"])));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let (catalog, _) = setup();
        let meetings = catalog.resolve("Meetings").unwrap();
        let mut db = Database::new();
        db.insert(
            &catalog,
            meetings,
            [Constant::from("a"), Constant::from("a")],
        )
        .unwrap();
        db.insert(
            &catalog,
            meetings,
            [Constant::from("a"), Constant::from("b")],
        )
        .unwrap();
        let diag = parse_query(&catalog, "Q(x) :- Meetings(x, x)").unwrap();
        let answers = evaluate(&diag, &db);
        assert_eq!(answers, BTreeSet::from([tuple(&["a"])]));
    }

    #[test]
    fn equivalent_queries_have_equal_answers_on_the_example_instance() {
        use crate::containment::equivalent_same_space;
        use crate::folding::fold;
        let (catalog, db) = setup();
        let redundant = parse_query(
            &catalog,
            "Q(x) :- Meetings(x, y), Meetings(x, z), Contacts(y, e, p)",
        )
        .unwrap();
        let folded = fold(&redundant);
        assert!(equivalent_same_space(&folded, &redundant));
        assert_eq!(evaluate(&folded, &db), evaluate(&redundant, &db));
    }

    #[test]
    fn contained_queries_have_subset_answers() {
        let (catalog, db) = setup();
        let selective = parse_query(&catalog, "Q(x) :- Meetings(x, 'Cathy')").unwrap();
        let general = parse_query(&catalog, "Q(x) :- Meetings(x, y)").unwrap();
        assert!(crate::containment::contained_in(&selective, &general));
        let sel_answers = evaluate(&selective, &db);
        let gen_answers = evaluate(&general, &db);
        assert!(sel_answers.is_subset(&gen_answers));
    }
}
