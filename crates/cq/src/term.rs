//! Terms: variables (distinguished or existential) and constants.
//!
//! The paper (Section 5) represents a conjunctive query as a list of body
//! atoms whose variables carry a *distinguished* / *existential* tag instead
//! of keeping an explicit head.  [`Term`] mirrors that representation: a term
//! is either a tagged variable or a constant.

use std::fmt;

/// Identifier of a variable within a single query.
///
/// Variable ids are local to a [`ConjunctiveQuery`](crate::ConjunctiveQuery):
/// two different queries may both use `VarId(0)` for unrelated variables.
/// Ids are dense (0, 1, 2, …) which lets algorithms index arrays by variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Returns the id as a usize, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Whether a variable is exposed in the query head (*distinguished*) or only
/// appears in the body (*existential*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarKind {
    /// The variable appears in the head of the query: its bindings are part
    /// of the query answer.
    Distinguished,
    /// The variable appears only in the body: it is existentially quantified
    /// and projected away.
    Existential,
}

impl VarKind {
    /// True for [`VarKind::Distinguished`].
    #[inline]
    pub fn is_distinguished(self) -> bool {
        matches!(self, VarKind::Distinguished)
    }

    /// True for [`VarKind::Existential`].
    #[inline]
    pub fn is_existential(self) -> bool {
        matches!(self, VarKind::Existential)
    }
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarKind::Distinguished => write!(f, "d"),
            VarKind::Existential => write!(f, "e"),
        }
    }
}

/// A constant value appearing in a query.
///
/// The paper's examples use string constants (`'Cathy'`, `'Intern'`) and
/// integer constants (`9`).  Both are supported; strings are stored owned.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constant {
    /// An integer constant such as `9`.
    Int(i64),
    /// A string constant such as `'Cathy'`.
    Str(String),
}

impl Constant {
    /// Builds a string constant.
    pub fn str(s: impl Into<String>) -> Self {
        Constant::Str(s.into())
    }

    /// Builds an integer constant.
    pub fn int(i: i64) -> Self {
        Constant::Int(i)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}

impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::Str(s.to_owned())
    }
}

impl From<String> for Constant {
    fn from(s: String) -> Self {
        Constant::Str(s)
    }
}

/// A term in an atom: either a tagged variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable together with its distinguished/existential tag.
    Var(VarId, VarKind),
    /// A constant.
    Const(Constant),
}

impl Term {
    /// Builds a distinguished variable term.
    #[inline]
    pub fn dist(id: u32) -> Self {
        Term::Var(VarId(id), VarKind::Distinguished)
    }

    /// Builds an existential variable term.
    #[inline]
    pub fn exist(id: u32) -> Self {
        Term::Var(VarId(id), VarKind::Existential)
    }

    /// Builds a constant term.
    #[inline]
    pub fn constant(c: impl Into<Constant>) -> Self {
        Term::Const(c.into())
    }

    /// Returns the variable id if the term is a variable.
    #[inline]
    pub fn var_id(&self) -> Option<VarId> {
        match self {
            Term::Var(id, _) => Some(*id),
            Term::Const(_) => None,
        }
    }

    /// Returns the variable kind if the term is a variable.
    #[inline]
    pub fn var_kind(&self) -> Option<VarKind> {
        match self {
            Term::Var(_, kind) => Some(*kind),
            Term::Const(_) => None,
        }
    }

    /// True if the term is a variable (of either kind).
    #[inline]
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(..))
    }

    /// True if the term is a distinguished variable.
    #[inline]
    pub fn is_distinguished(&self) -> bool {
        matches!(self, Term::Var(_, VarKind::Distinguished))
    }

    /// True if the term is an existential variable.
    #[inline]
    pub fn is_existential(&self) -> bool {
        matches!(self, Term::Var(_, VarKind::Existential))
    }

    /// True if the term is a constant.
    #[inline]
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Returns the constant if the term is one.
    #[inline]
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(..) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(id, kind) => write!(f, "{id}{kind}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_constructors_and_predicates() {
        let d = Term::dist(3);
        assert!(d.is_var());
        assert!(d.is_distinguished());
        assert!(!d.is_existential());
        assert_eq!(d.var_id(), Some(VarId(3)));
        assert_eq!(d.var_kind(), Some(VarKind::Distinguished));
        assert_eq!(d.as_const(), None);

        let e = Term::exist(7);
        assert!(e.is_existential());
        assert!(!e.is_distinguished());

        let c = Term::constant("Cathy");
        assert!(c.is_const());
        assert!(!c.is_var());
        assert_eq!(c.var_id(), None);
        assert_eq!(c.var_kind(), None);
        assert_eq!(c.as_const(), Some(&Constant::Str("Cathy".into())));

        let i = Term::constant(9i64);
        assert_eq!(i.as_const(), Some(&Constant::Int(9)));
    }

    #[test]
    fn constant_conversions() {
        assert_eq!(Constant::from(5i64), Constant::Int(5));
        assert_eq!(Constant::from("a"), Constant::Str("a".into()));
        assert_eq!(Constant::from(String::from("b")), Constant::Str("b".into()));
        assert_eq!(Constant::str("x"), Constant::Str("x".into()));
        assert_eq!(Constant::int(-2), Constant::Int(-2));
    }

    #[test]
    fn display_formats_match_paper_notation() {
        assert_eq!(Term::dist(0).to_string(), "v0d");
        assert_eq!(Term::exist(1).to_string(), "v1e");
        assert_eq!(Term::constant("Intern").to_string(), "'Intern'");
        assert_eq!(Term::constant(9i64).to_string(), "9");
        assert_eq!(VarKind::Distinguished.to_string(), "d");
        assert_eq!(VarKind::Existential.to_string(), "e");
    }

    #[test]
    fn var_kind_predicates() {
        assert!(VarKind::Distinguished.is_distinguished());
        assert!(!VarKind::Distinguished.is_existential());
        assert!(VarKind::Existential.is_existential());
        assert!(!VarKind::Existential.is_distinguished());
    }

    #[test]
    fn var_id_index() {
        assert_eq!(VarId(42).index(), 42);
    }
}
