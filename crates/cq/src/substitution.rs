//! Substitutions: partial maps from variables to terms.
//!
//! Substitutions are the workhorse of homomorphism search
//! ([`homomorphism`](crate::homomorphism)) and of the unification-based
//! `GLBSingleton` / `GenMGU` procedures implemented in `fdc-core`.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::term::{Term, VarId};

/// A partial map from variables to terms.
///
/// The domain and range may belong to different queries: a homomorphism from
/// query `A` to query `B` is a substitution whose keys are variables of `A`
/// and whose values are terms of `B`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Substitution {
    map: HashMap<VarId, Term>,
}

impl Substitution {
    /// Creates an empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables bound.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up the binding of a variable.
    pub fn get(&self, v: VarId) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Binds `v` to `t`, returning `false` if `v` is already bound to a
    /// different term (the binding is left unchanged in that case).
    pub fn bind(&mut self, v: VarId, t: Term) -> bool {
        match self.map.get(&v) {
            Some(existing) => *existing == t,
            None => {
                self.map.insert(v, t);
                true
            }
        }
    }

    /// Removes the binding of `v` (used when backtracking).
    pub fn unbind(&mut self, v: VarId) {
        self.map.remove(&v);
    }

    /// Applies the substitution to a term.  Unbound variables are left as-is.
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Var(v, _) => self.map.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        }
    }

    /// Applies the substitution to every argument of an atom.
    pub fn apply_atom(&self, atom: &Atom) -> Atom {
        Atom::new(
            atom.relation,
            atom.terms.iter().map(|t| self.apply_term(t)).collect(),
        )
    }

    /// Iterates over the bindings in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Term)> {
        self.map.iter().map(|(v, t)| (*v, t))
    }
}

impl FromIterator<(VarId, Term)> for Substitution {
    fn from_iter<I: IntoIterator<Item = (VarId, Term)>>(iter: I) -> Self {
        Substitution {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RelId;

    #[test]
    fn bind_and_lookup() {
        let mut s = Substitution::new();
        assert!(s.is_empty());
        assert!(s.bind(VarId(0), Term::dist(5)));
        assert!(s.bind(VarId(1), Term::constant("a")));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.get(VarId(0)), Some(&Term::dist(5)));
        assert_eq!(s.get(VarId(2)), None);

        // Re-binding to the same term succeeds, to a different term fails.
        assert!(s.bind(VarId(0), Term::dist(5)));
        assert!(!s.bind(VarId(0), Term::dist(6)));
        assert_eq!(s.get(VarId(0)), Some(&Term::dist(5)));

        s.unbind(VarId(0));
        assert_eq!(s.get(VarId(0)), None);
    }

    #[test]
    fn apply_leaves_unbound_variables_and_constants_alone() {
        let s: Substitution = [(VarId(0), Term::exist(9))].into_iter().collect();
        assert_eq!(s.apply_term(&Term::dist(0)), Term::exist(9));
        assert_eq!(s.apply_term(&Term::dist(1)), Term::dist(1));
        assert_eq!(s.apply_term(&Term::constant(4i64)), Term::constant(4i64));

        let atom = Atom::new(
            RelId(0),
            vec![Term::dist(0), Term::constant("k"), Term::exist(1)],
        );
        let mapped = s.apply_atom(&atom);
        assert_eq!(
            mapped.terms,
            vec![Term::exist(9), Term::constant("k"), Term::exist(1)]
        );
        assert_eq!(mapped.relation, RelId(0));
    }

    #[test]
    fn iteration_yields_all_bindings() {
        let s: Substitution = [(VarId(0), Term::dist(1)), (VarId(2), Term::constant(3i64))]
            .into_iter()
            .collect();
        let mut pairs: Vec<(VarId, Term)> = s.iter().map(|(v, t)| (v, t.clone())).collect();
        pairs.sort_by_key(|(v, _)| *v);
        assert_eq!(
            pairs,
            vec![(VarId(0), Term::dist(1)), (VarId(2), Term::constant(3i64))]
        );
    }
}
