//! Error types for the conjunctive-query substrate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CqError>;

/// Errors produced while building, parsing or validating conjunctive queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqError {
    /// A relation name was registered twice in the same catalog.
    DuplicateRelation(String),
    /// A relation name was referenced but never registered.
    UnknownRelation(String),
    /// An atom was built with the wrong number of arguments for its relation.
    ArityMismatch {
        /// Relation the atom refers to.
        relation: String,
        /// Arity declared in the catalog.
        expected: usize,
        /// Number of arguments the atom was given.
        found: usize,
    },
    /// A head variable does not appear in the query body (unsafe query).
    UnsafeHeadVariable(String),
    /// The same variable name was used with conflicting distinguished /
    /// existential tags.
    ConflictingVariableKind(String),
    /// The parser failed; the payload is a human-readable message including
    /// the offending position.
    Parse(String),
    /// A query had no body atoms.
    EmptyBody,
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is already defined in the catalog")
            }
            CqError::UnknownRelation(name) => {
                write!(f, "relation `{name}` is not defined in the catalog")
            }
            CqError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but the atom has {found} arguments"
            ),
            CqError::UnsafeHeadVariable(v) => {
                write!(f, "head variable `{v}` does not appear in the query body")
            }
            CqError::ConflictingVariableKind(v) => write!(
                f,
                "variable `{v}` is used both as distinguished and as existential"
            ),
            CqError::Parse(msg) => write!(f, "parse error: {msg}"),
            CqError::EmptyBody => write!(f, "conjunctive queries must have at least one body atom"),
        }
    }
}

impl std::error::Error for CqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CqError::ArityMismatch {
            relation: "Meetings".into(),
            expected: 2,
            found: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("Meetings"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));

        assert!(CqError::DuplicateRelation("User".into())
            .to_string()
            .contains("User"));
        assert!(CqError::UnknownRelation("Ghost".into())
            .to_string()
            .contains("Ghost"));
        assert!(CqError::UnsafeHeadVariable("x".into())
            .to_string()
            .contains('x'));
        assert!(CqError::ConflictingVariableKind("y".into())
            .to_string()
            .contains('y'));
        assert!(CqError::Parse("bad token".into())
            .to_string()
            .contains("bad token"));
        assert!(!CqError::EmptyBody.to_string().is_empty());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CqError::EmptyBody, CqError::EmptyBody);
        assert_ne!(
            CqError::DuplicateRelation("A".into()),
            CqError::DuplicateRelation("B".into())
        );
    }
}
