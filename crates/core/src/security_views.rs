//! Registration of single-atom security views (the generating set `Fgen`).
//!
//! Section 5 restricts security views to single-atom conjunctive queries.
//! The paper's evaluation (Section 7.2) models each relation with a handful
//! of such views — 16 for the `User` relation, around 3 for the others — and
//! Section 6.1 represents the views of one relation as bit positions inside
//! a packed 64-bit label.  [`SecurityViews`] is the registry that makes this
//! work: it validates the views, groups them by base relation, and assigns
//! each view a global [`SecurityViewId`] and a per-relation bit position.

use std::collections::HashMap;

use fdc_cq::{Catalog, ConjunctiveQuery, RelId};

use crate::error::{LabelError, Result};

/// Maximum number of security views per relation supported by the in-memory
/// (unpacked) label representation: the 64-bit
/// [`ViewMask`](crate::label::ViewMask).
///
/// The paper's implementation packs 32 view bits and a 32-bit relation id
/// into a single 64-bit integer and notes "there is nothing special about
/// the number 32"; we keep a full 64-bit mask per atom label and therefore
/// support 64 views per relation on the unpacked path (the case study's
/// per-permission registry needs more than 32).  Registration rejects the
/// 65th view — the mask would silently overflow otherwise.
pub const MAX_VIEWS_PER_RELATION: usize = 64;

/// Maximum number of security views per relation supported by the **packed**
/// 64-bit label representation (Section 6.1: 32 view bits + 32-bit relation
/// id) — the production serving path end to end
/// (`CachedLabeler::label_packed` → `PolicyStore::submit_packed`).
///
/// Surfaces that feed the packed path enforce this budget at mutation time
/// (`BitVectorLabeler::add_view`, `CachedLabeler::add_view`, the service's
/// `AddSecurityView`): admitting a 33rd view there would make
/// [`AtomLabel::pack`](crate::label::AtomLabel::pack) silently truncate the
/// mask in release builds and mis-decide every query touching the relation —
/// the same silent-overflow shape as the seed's missing `MAX_PARTITIONS`
/// check, fixed the same way (validate before the representation can
/// overflow).  Registries built for unpacked labeling only (e.g. the case
/// study's) may still hold up to [`MAX_VIEWS_PER_RELATION`] views.
pub const MAX_PACKED_VIEWS_PER_RELATION: usize = 32;

/// Identifier of a registered security view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SecurityViewId(pub u32);

impl SecurityViewId {
    /// Returns the id as a usize, convenient for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A registered security view.
#[derive(Debug, Clone)]
pub struct SecurityView {
    /// Human-readable name (e.g. a Facebook permission such as `user_likes`).
    pub name: String,
    /// The single-atom view definition.
    pub query: ConjunctiveQuery,
    /// The base relation of the view's single atom.
    pub relation: RelId,
    /// Bit position of this view within its relation's label mask.
    pub bit: u32,
}

/// The registry of single-atom security views used by every labeler.
///
/// # Example
///
/// ```
/// use fdc_cq::{Catalog, parser::parse_query};
/// use fdc_core::SecurityViews;
///
/// let catalog = Catalog::paper_example();
/// let mut views = SecurityViews::new(&catalog);
/// views.add("V1", parse_query(&catalog, "V1(x, y) :- Meetings(x, y)").unwrap()).unwrap();
/// views.add("V2", parse_query(&catalog, "V2(x) :- Meetings(x, y)").unwrap()).unwrap();
/// views.add("V3", parse_query(&catalog, "V3(x, y, z) :- Contacts(x, y, z)").unwrap()).unwrap();
///
/// assert_eq!(views.len(), 3);
/// assert_eq!(views.by_name("V2").map(|v| v.name.as_str()), Some("V2"));
/// ```
#[derive(Debug, Clone)]
pub struct SecurityViews {
    catalog: Catalog,
    views: Vec<SecurityView>,
    by_name: HashMap<String, SecurityViewId>,
    by_relation: HashMap<RelId, Vec<SecurityViewId>>,
    /// Per-relation version counter of the view universe.  Relations absent
    /// from the map are at epoch 0.  See [`epoch`](Self::epoch).
    epochs: HashMap<RelId, u64>,
}

impl SecurityViews {
    /// Creates an empty registry over a catalog.
    ///
    /// The catalog is cloned so that the registry (and the labelers built on
    /// it) are self-contained.
    pub fn new(catalog: &Catalog) -> Self {
        SecurityViews {
            catalog: catalog.clone(),
            views: Vec::new(),
            by_name: HashMap::new(),
            by_relation: HashMap::new(),
            epochs: HashMap::new(),
        }
    }

    /// The catalog the views are defined over.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Registers a single-atom security view.
    pub fn add(&mut self, name: &str, query: ConjunctiveQuery) -> Result<SecurityViewId> {
        if self.by_name.contains_key(name) {
            return Err(LabelError::DuplicateView(name.to_owned()));
        }
        if !query.is_single_atom() {
            return Err(LabelError::NotSingleAtom {
                view: name.to_owned(),
            });
        }
        query
            .validate(&self.catalog)
            .map_err(|e| LabelError::InvalidQuery(e.to_string()))?;
        let relation = query.atoms()[0].relation;
        let per_relation = self.by_relation.entry(relation).or_default();
        if per_relation.len() >= MAX_VIEWS_PER_RELATION {
            return Err(LabelError::TooManyViewsForRelation {
                relation: self.catalog.name(relation).to_owned(),
                count: per_relation.len() + 1,
                limit: MAX_VIEWS_PER_RELATION,
            });
        }
        let id = SecurityViewId(self.views.len() as u32);
        let bit = per_relation.len() as u32;
        per_relation.push(id);
        self.views.push(SecurityView {
            name: name.to_owned(),
            query,
            relation,
            bit,
        });
        self.by_name.insert(name.to_owned(), id);
        // The relation's view universe changed: labels computed for atoms
        // over it are now stale (the new view may answer them).
        self.bump_epoch(relation);
        Ok(id)
    }

    /// The epoch (version) of a relation's view universe.
    ///
    /// The epoch starts at 0 and advances every time the set of views
    /// defined over the relation changes ([`add`](Self::add)) or the
    /// relation is explicitly invalidated ([`bump_epoch`](Self::bump_epoch)).
    /// Derived artifacts — cached query labels, per-atom `ℓ⁺` masks — record
    /// the epoch they were computed under and compare it against the current
    /// one to detect staleness, so a mutation to one relation never touches
    /// cached work for the others.
    #[inline]
    pub fn epoch(&self, relation: RelId) -> u64 {
        self.epochs.get(&relation).copied().unwrap_or(0)
    }

    /// Advances the epoch of a relation's view universe, marking every label
    /// or mask derived for atoms over it as stale.
    ///
    /// Called automatically by [`add`](Self::add); exposed for callers that
    /// invalidate a relation for external reasons (e.g. a changed view
    /// definition).
    pub fn bump_epoch(&mut self, relation: RelId) {
        *self.epochs.entry(relation).or_insert(0) += 1;
    }

    /// Registers several views parsed from a datalog program
    /// (see [`fdc_cq::parser::parse_program`]).
    pub fn add_program(&mut self, program: &str) -> Result<Vec<SecurityViewId>> {
        let parsed = fdc_cq::parser::parse_program(&self.catalog, program)
            .map_err(|e| LabelError::InvalidQuery(e.to_string()))?;
        parsed
            .into_iter()
            .map(|(name, query)| self.add(&name, query))
            .collect()
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Looks up a view by id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not issued by this registry.
    pub fn view(&self, id: SecurityViewId) -> &SecurityView {
        &self.views[id.index()]
    }

    /// Looks up a view by name.
    pub fn by_name(&self, name: &str) -> Option<&SecurityView> {
        self.by_name.get(name).map(|id| self.view(*id))
    }

    /// Looks up a view id by name.
    pub fn id_by_name(&self, name: &str) -> Option<SecurityViewId> {
        self.by_name.get(name).copied()
    }

    /// The ids of the views defined over a relation, in registration order
    /// (their `bit` fields are 0, 1, 2, … in this order).
    pub fn views_for_relation(&self, relation: RelId) -> &[SecurityViewId] {
        self.by_relation
            .get(&relation)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The view occupying bit position `bit` of `relation`'s label mask, if
    /// any — the inverse of [`SecurityView::bit`], used to translate
    /// per-relation permitted masks back into view ids.
    pub fn view_by_relation_bit(&self, relation: RelId, bit: u32) -> Option<SecurityViewId> {
        self.views_for_relation(relation).get(bit as usize).copied()
    }

    /// Iterates over `(id, view)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (SecurityViewId, &SecurityView)> {
        self.views
            .iter()
            .enumerate()
            .map(|(i, v)| (SecurityViewId(i as u32), v))
    }

    /// The number of distinct relations that have at least one view.
    pub fn num_relations_covered(&self) -> usize {
        self.by_relation.len()
    }

    /// Serializes the registry — catalog, views in registration order,
    /// explicit per-relation epochs — into `out` (the `fdc-core` slice
    /// of a checkpoint).
    ///
    /// Views are stored by name + definition and *re-registered* on
    /// decode, so ids, bits and the by-relation grouping reproduce by
    /// construction; epochs are stored explicitly because
    /// [`bump_epoch`](Self::bump_epoch) lets them run ahead of the
    /// registration count.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use fdc_durability::codec::{put_len, put_u32, put_u64};
        fdc_cq::wire::encode_catalog(&self.catalog, out);
        put_len(out, self.views.len());
        for view in &self.views {
            fdc_durability::codec::put_str(out, &view.name);
            fdc_cq::wire::encode_query(&view.query, out);
        }
        // Epochs in sorted relation order, for a deterministic encoding.
        let mut epochs: Vec<(RelId, u64)> = self.epochs.iter().map(|(r, e)| (*r, *e)).collect();
        epochs.sort();
        put_len(out, epochs.len());
        for (relation, epoch) in epochs {
            put_u32(out, relation.0);
            put_u64(out, epoch);
        }
    }

    /// Deserializes a registry written by
    /// [`encode_into`](Self::encode_into): the catalog is decoded, every
    /// view re-registered in order (reproducing ids and bits), and the
    /// stored epochs restored.  A stored epoch below what re-registration
    /// alone produced is rejected as corrupt — epochs never move
    /// backwards.
    pub fn decode_from(
        cursor: &mut fdc_durability::codec::Cursor<'_>,
    ) -> std::result::Result<Self, fdc_durability::codec::CodecError> {
        use fdc_durability::codec::CodecError;
        let catalog = fdc_cq::wire::decode_catalog(cursor)?;
        let mut views = SecurityViews::new(&catalog);
        let num_views = cursor.count(9)?;
        for _ in 0..num_views {
            let at = cursor.pos();
            let name = cursor.str()?.to_owned();
            let query = fdc_cq::wire::decode_query(cursor)?;
            views
                .add(&name, query)
                .map_err(|err| CodecError::invalid(at, format!("invalid view: {err}")))?;
        }
        let num_epochs = cursor.count(12)?;
        for _ in 0..num_epochs {
            let at = cursor.pos();
            let relation = RelId(cursor.u32()?);
            let epoch = cursor.u64()?;
            if relation.index() >= catalog.len() {
                return Err(CodecError::invalid(at, "epoch for unknown relation"));
            }
            if epoch < views.epoch(relation) {
                return Err(CodecError::invalid(
                    at,
                    "stored epoch below registration count",
                ));
            }
            views.epochs.insert(relation, epoch);
        }
        Ok(views)
    }

    /// Builds the Figure 1 (b) registry: `V1`, `V2`, `V3` over the
    /// Meetings/Contacts catalog.
    pub fn paper_example() -> Self {
        let catalog = Catalog::paper_example();
        let mut views = SecurityViews::new(&catalog);
        views
            .add_program(
                r"
                V1(x, y)    :- Meetings(x, y)
                V2(x)       :- Meetings(x, y)
                V3(x, y, z) :- Contacts(x, y, z)
                ",
            )
            .expect("paper example views are valid");
        views
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::parser::parse_query;

    #[test]
    fn registration_assigns_ids_and_bits_per_relation() {
        let catalog = Catalog::paper_example();
        let mut views = SecurityViews::new(&catalog);
        let v1 = views
            .add(
                "V1",
                parse_query(&catalog, "V1(x, y) :- Meetings(x, y)").unwrap(),
            )
            .unwrap();
        let v2 = views
            .add(
                "V2",
                parse_query(&catalog, "V2(x) :- Meetings(x, y)").unwrap(),
            )
            .unwrap();
        let v3 = views
            .add(
                "V3",
                parse_query(&catalog, "V3(x, y, z) :- Contacts(x, y, z)").unwrap(),
            )
            .unwrap();

        assert_eq!(views.len(), 3);
        assert!(!views.is_empty());
        assert_eq!(views.view(v1).bit, 0);
        assert_eq!(views.view(v2).bit, 1); // second Meetings view
        assert_eq!(views.view(v3).bit, 0); // first Contacts view
        assert_eq!(views.num_relations_covered(), 2);

        let meetings = catalog.resolve("Meetings").unwrap();
        assert_eq!(views.views_for_relation(meetings), &[v1, v2]);
        let contacts = catalog.resolve("Contacts").unwrap();
        assert_eq!(views.views_for_relation(contacts), &[v3]);
        let ids: Vec<SecurityViewId> = views.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![v1, v2, v3]);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let catalog = Catalog::paper_example();
        let mut views = SecurityViews::new(&catalog);
        views
            .add(
                "V1",
                parse_query(&catalog, "V1(x, y) :- Meetings(x, y)").unwrap(),
            )
            .unwrap();
        let err = views
            .add(
                "V1",
                parse_query(&catalog, "V1(x) :- Meetings(x, y)").unwrap(),
            )
            .unwrap_err();
        assert_eq!(err, LabelError::DuplicateView("V1".into()));
    }

    #[test]
    fn multi_atom_views_are_rejected() {
        let catalog = Catalog::paper_example();
        let mut views = SecurityViews::new(&catalog);
        let q = parse_query(&catalog, "V(x) :- Meetings(x, y), Contacts(y, w, 'Intern')").unwrap();
        let err = views.add("joined", q).unwrap_err();
        assert_eq!(
            err,
            LabelError::NotSingleAtom {
                view: "joined".into()
            }
        );
    }

    #[test]
    fn lookup_by_name() {
        let views = SecurityViews::paper_example();
        assert_eq!(views.len(), 3);
        assert!(views.by_name("V2").is_some());
        assert!(views.by_name("missing").is_none());
        let id = views.id_by_name("V3").unwrap();
        assert_eq!(views.view(id).name, "V3");
        assert_eq!(views.catalog().len(), 2);
    }

    #[test]
    fn unknown_relation_bubbles_up_as_invalid_query() {
        let catalog = Catalog::paper_example();
        let mut views = SecurityViews::new(&catalog);
        let err = views.add_program("V(x) :- Ghost(x)").unwrap_err();
        assert!(matches!(err, LabelError::InvalidQuery(_)));
    }

    #[test]
    fn epochs_advance_only_for_the_mutated_relation() {
        let catalog = Catalog::paper_example();
        let meetings = catalog.resolve("Meetings").unwrap();
        let contacts = catalog.resolve("Contacts").unwrap();
        let mut views = SecurityViews::new(&catalog);
        assert_eq!(views.epoch(meetings), 0);
        assert_eq!(views.epoch(contacts), 0);

        views
            .add(
                "V1",
                parse_query(&catalog, "V1(x, y) :- Meetings(x, y)").unwrap(),
            )
            .unwrap();
        assert_eq!(views.epoch(meetings), 1);
        assert_eq!(views.epoch(contacts), 0);

        views
            .add(
                "V3",
                parse_query(&catalog, "V3(x, y, z) :- Contacts(x, y, z)").unwrap(),
            )
            .unwrap();
        assert_eq!(views.epoch(meetings), 1);
        assert_eq!(views.epoch(contacts), 1);

        // Explicit invalidation advances the epoch without changing views.
        views.bump_epoch(meetings);
        assert_eq!(views.epoch(meetings), 2);
        assert_eq!(views.len(), 2);

        // Rejected registrations leave every epoch untouched.
        let q = parse_query(&catalog, "V1(x) :- Meetings(x, y)").unwrap();
        assert!(views.add("V1", q).is_err());
        assert_eq!(views.epoch(meetings), 2);
    }

    #[test]
    fn bits_round_trip_through_view_by_relation_bit() {
        let views = SecurityViews::paper_example();
        for (id, view) in views.iter() {
            assert_eq!(
                views.view_by_relation_bit(view.relation, view.bit),
                Some(id)
            );
        }
        let meetings = views.catalog().resolve("Meetings").unwrap();
        assert_eq!(views.view_by_relation_bit(meetings, 63), None);
    }

    #[test]
    fn the_65th_view_is_rejected_with_full_context() {
        // Regression companion of `per_relation_view_limit_is_enforced`:
        // the error names the relation, the would-be count and the limit,
        // and the rejected view leaves the registry untouched.
        let mut catalog = Catalog::new();
        catalog.add_relation_with_arity("Wide", 2).unwrap();
        let mut views = SecurityViews::new(&catalog);
        for i in 0..MAX_VIEWS_PER_RELATION {
            let q = parse_query(&catalog, "V(x, y) :- Wide(x, y)").unwrap();
            views.add(&format!("v{i}"), q).unwrap();
        }
        let q = parse_query(&catalog, "V(x, y) :- Wide(x, y)").unwrap();
        let err = views.add("overflow", q).unwrap_err();
        assert_eq!(
            err,
            LabelError::TooManyViewsForRelation {
                relation: "Wide".into(),
                count: MAX_VIEWS_PER_RELATION + 1,
                limit: MAX_VIEWS_PER_RELATION,
            }
        );
        assert_eq!(views.len(), MAX_VIEWS_PER_RELATION);
        assert!(views.by_name("overflow").is_none());
    }

    #[test]
    fn encode_decode_round_trips_ids_bits_and_epochs() {
        let mut views = SecurityViews::paper_example();
        let meetings = views.catalog().resolve("Meetings").unwrap();
        // Push an epoch ahead of its registration count so the explicit
        // restore path is exercised.
        views.bump_epoch(meetings);
        views.bump_epoch(meetings);
        let mut bytes = Vec::new();
        views.encode_into(&mut bytes);
        let mut cursor = fdc_durability::codec::Cursor::new(&bytes);
        let back = SecurityViews::decode_from(&mut cursor).unwrap();
        cursor.expect_end().unwrap();
        assert_eq!(back.len(), views.len());
        for (id, view) in views.iter() {
            let restored = back.view(id);
            assert_eq!(restored.name, view.name);
            assert_eq!(restored.relation, view.relation);
            assert_eq!(restored.bit, view.bit);
            assert_eq!(restored.query, view.query);
            assert_eq!(back.id_by_name(&view.name), Some(id));
        }
        for (relation, _) in views.catalog().iter() {
            assert_eq!(back.epoch(relation), views.epoch(relation));
        }
    }

    #[test]
    fn decode_rejects_truncation_and_backward_epochs() {
        let views = SecurityViews::paper_example();
        let mut bytes = Vec::new();
        views.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            let mut cursor = fdc_durability::codec::Cursor::new(&bytes[..cut]);
            assert!(
                SecurityViews::decode_from(&mut cursor).is_err(),
                "cut {cut}"
            );
        }
        // An epoch below the registration count is corrupt: the last 8
        // bytes are the final relation's stored epoch.
        let len = bytes.len();
        bytes[len - 8..].copy_from_slice(&0u64.to_le_bytes());
        let mut cursor = fdc_durability::codec::Cursor::new(&bytes);
        assert!(SecurityViews::decode_from(&mut cursor).is_err());
    }

    #[test]
    fn per_relation_view_limit_is_enforced() {
        let mut catalog = Catalog::new();
        catalog.add_relation_with_arity("Wide", 2).unwrap();
        let mut views = SecurityViews::new(&catalog);
        for i in 0..MAX_VIEWS_PER_RELATION {
            // Register syntactically distinct but semantically identical
            // views: the registry does not deduplicate by meaning.
            let q = parse_query(&catalog, "V(x, y) :- Wide(x, y)").unwrap();
            views.add(&format!("v{i}"), q).unwrap();
        }
        let q = parse_query(&catalog, "V(x, y) :- Wide(x, y)").unwrap();
        let err = views.add("overflow", q).unwrap_err();
        assert!(matches!(err, LabelError::TooManyViewsForRelation { .. }));
    }
}
