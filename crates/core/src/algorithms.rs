//! The generic labeling procedures of Sections 3.3 and 4, instantiated for
//! sets of single-atom views under the equivalent view rewriting order.
//!
//! These functions operate directly on view *sets* (slices of single-atom
//! [`ConjunctiveQuery`] values) and are faithful transcriptions of the
//! paper's pseudocode:
//!
//! * [`naive_label`] — `NaïveLabel(F, W)` from Section 3.3: scan an explicit
//!   label family in order of increasing disclosure.
//! * [`glb_label`] — `GLBLabel(Fd, W)` from Section 4.1: running GLB of the
//!   downward-generating-set elements that reveal at least as much as `W`.
//! * [`label_gen`] — `LabelGen(Fgen, W)` from Section 4.2: label each view
//!   of `W` separately and union the results.
//!
//! The production labelers in [`crate::labeler`] are optimized variants of
//! `LabelGen` (hash partitioning, `ℓ⁺` bit vectors); the functions here are
//! used by tests, by the examples, and to cross-check the optimized
//! implementations on the paper's worked examples.

use fdc_cq::rewriting::{rewritable_from_any, set_rewritable};
use fdc_cq::ConjunctiveQuery;

use crate::unify::glb_sets;

/// `W1 ⪯ W2` under equivalent view rewriting for sets of single-atom views.
pub fn views_leq(w1: &[ConjunctiveQuery], w2: &[ConjunctiveQuery]) -> bool {
    set_rewritable(w1, w2)
}

/// `NaïveLabel(F, W)` (Section 3.3): returns the index in `f` of the first
/// element, in increasing-disclosure order, that reveals at least as much as
/// `w`; `None` plays the role of ⊤ (no element of `f` suffices).
pub fn naive_label(f: &[Vec<ConjunctiveQuery>], w: &[ConjunctiveQuery]) -> Option<usize> {
    // Sort indices into a linear extension of the disclosure order: an
    // element that lies below many others must come before them, and if
    // F[i] ⪯ F[j] then (by transitivity) the up-set of F[i] contains that of
    // F[j], so ordering by decreasing up-set size puts F[i] first.
    let mut order: Vec<usize> = (0..f.len()).collect();
    let dominates = |i: usize, j: usize| views_leq(&f[i], &f[j]);
    order.sort_by_key(|&i| std::cmp::Reverse((0..f.len()).filter(|&j| dominates(i, j)).count()));
    order.into_iter().find(|&i| views_leq(w, &f[i]))
}

/// `GLBLabel(Fd, W)` (Section 4.1): the GLB of the elements of the downward
/// generating set `fd` that reveal at least as much as `w`.
///
/// The result is returned as a set of single-atom views; an empty result
/// means ⊥ only when some element of `fd` was above `w`, and ⊤ (nothing in
/// `fd` suffices) is signalled by `None`.
pub fn glb_label(
    fd: &[Vec<ConjunctiveQuery>],
    w: &[ConjunctiveQuery],
) -> Option<Vec<ConjunctiveQuery>> {
    let mut running: Option<Vec<ConjunctiveQuery>> = None;
    for candidate in fd {
        if views_leq(w, candidate) {
            running = Some(match running {
                None => candidate.clone(),
                Some(current) => glb_sets(&current, candidate),
            });
        }
    }
    running
}

/// `LabelGen(Fgen, W)` (Section 4.2): label each view of `w` separately with
/// `GLBLabel` against the singleton generating set and union the results.
///
/// Returns one entry per view of `w`: the set of generating views that can
/// answer it (`ℓ⁺`), or `None` for ⊤ (the view is unanswerable from `fgen`).
pub fn label_gen<'a>(
    fgen: &'a [ConjunctiveQuery],
    w: &[ConjunctiveQuery],
) -> Vec<Option<Vec<&'a ConjunctiveQuery>>> {
    w.iter()
        .map(|v| {
            let above: Vec<&ConjunctiveQuery> = fgen
                .iter()
                .filter(|candidate| rewritable_from_any(v, std::iter::once(*candidate)))
                .collect();
            if above.is_empty() {
                None
            } else {
                Some(above)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::{parser::parse_query, Catalog};

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    /// The Figure 3 universe as explicit view sets.
    struct Fig3 {
        v1: ConjunctiveQuery,
        v2: ConjunctiveQuery,
        v4: ConjunctiveQuery,
        v5: ConjunctiveQuery,
    }

    fn fig3() -> (Catalog, Fig3) {
        let c = catalog();
        let views = Fig3 {
            v1: q(&c, "V1(x, y) :- Meetings(x, y)"),
            v2: q(&c, "V2(x) :- Meetings(x, y)"),
            v4: q(&c, "V4(y) :- Meetings(x, y)"),
            v5: q(&c, "V5() :- Meetings(x, y)"),
        };
        (c, views)
    }

    #[test]
    fn views_leq_reproduces_figure_3_relationships() {
        let (_, f) = fig3();
        assert!(views_leq(
            std::slice::from_ref(&f.v5),
            std::slice::from_ref(&f.v2)
        ));
        assert!(views_leq(
            &[f.v2.clone(), f.v4.clone()],
            std::slice::from_ref(&f.v1)
        ));
        assert!(!views_leq(
            std::slice::from_ref(&f.v1),
            &[f.v2.clone(), f.v4.clone()]
        ));
        // The empty set is below everything.
        assert!(views_leq(&[], std::slice::from_ref(&f.v5)));
    }

    #[test]
    fn naive_label_picks_the_least_sufficient_family_element() {
        let (_, f) = fig3();
        // F = {∅, {V5}, {V2}, {V4}, {V2,V4}, {V1}} — the family induced by
        // the Figure 3 universe.
        let family: Vec<Vec<ConjunctiveQuery>> = vec![
            vec![],
            vec![f.v5.clone()],
            vec![f.v2.clone()],
            vec![f.v4.clone()],
            vec![f.v2.clone(), f.v4.clone()],
            vec![f.v1.clone()],
        ];
        // Labeling V5 picks {V5}, not one of the bigger elements.
        let idx = naive_label(&family, std::slice::from_ref(&f.v5)).unwrap();
        assert_eq!(idx, 1);
        // Labeling V2 picks {V2}.
        assert_eq!(naive_label(&family, std::slice::from_ref(&f.v2)), Some(2));
        // Labeling {V2, V4} picks the pair.
        assert_eq!(naive_label(&family, &[f.v2.clone(), f.v4.clone()]), Some(4));
        // Labeling V1 needs the top of the family.
        assert_eq!(naive_label(&family, std::slice::from_ref(&f.v1)), Some(5));
        // The empty query set labels to ∅.
        assert_eq!(naive_label(&family, &[]), Some(0));
    }

    #[test]
    fn naive_label_returns_none_when_nothing_suffices() {
        let (_, f) = fig3();
        let family: Vec<Vec<ConjunctiveQuery>> = vec![vec![], vec![f.v2.clone()]];
        assert_eq!(naive_label(&family, std::slice::from_ref(&f.v1)), None);
    }

    #[test]
    fn glb_label_example_4_4() {
        // Labeling the single-column projection V9 against the downward
        // generating set {{V3}, {V6}, {V7}, {V8}} yields GLB({V3},{V6},{V7})
        // ≡ {V9}.
        let c = catalog();
        let v3 = q(&c, "V3(x, y, z) :- Contacts(x, y, z)");
        let v6 = q(&c, "V6(x, y) :- Contacts(x, y, z)");
        let v7 = q(&c, "V7(x, z) :- Contacts(x, y, z)");
        let v8 = q(&c, "V8(y, z) :- Contacts(x, y, z)");
        let v9 = q(&c, "V9(x) :- Contacts(x, y, z)");

        let fd: Vec<Vec<ConjunctiveQuery>> = vec![
            vec![v3.clone()],
            vec![v6.clone()],
            vec![v7.clone()],
            vec![v8.clone()],
        ];
        let label = glb_label(&fd, std::slice::from_ref(&v9)).expect("V9 is answerable");
        // The GLB collapses to a single view equivalent to V9 itself.
        assert!(label
            .iter()
            .any(|view| fdc_cq::containment::equivalent(view, &v9)));
        assert!(label
            .iter()
            .all(|view| fdc_cq::containment::contained_in(view, &v9)
                || fdc_cq::containment::contained_in(&v9, view)
                || fdc_cq::containment::equivalent(view, &v9)));
    }

    #[test]
    fn glb_label_returns_top_when_unanswerable() {
        let c = catalog();
        let v2 = q(&c, "V2(x) :- Meetings(x, y)");
        let v9 = q(&c, "V9(x) :- Contacts(x, y, z)");
        let fd = vec![vec![v2.clone()]];
        assert_eq!(glb_label(&fd, std::slice::from_ref(&v9)), None);
    }

    #[test]
    fn label_gen_matches_the_figure_1_walkthrough() {
        // Fgen = the Figure 1 security views {V1, V2, V3}; labeling the
        // dissected Q2 = {M(xd, yd), C(yd, we, 'Intern')} yields {V1} for the
        // first atom and {V3} for the second — the paper's label {V1, V3}.
        let c = catalog();
        let fgen = vec![
            q(&c, "V1(x, y) :- Meetings(x, y)"),
            q(&c, "V2(x) :- Meetings(x, y)"),
            q(&c, "V3(x, y, z) :- Contacts(x, y, z)"),
        ];
        let w = vec![
            q(&c, "P(x, y) :- Meetings(x, y)"),
            q(&c, "P(y) :- Contacts(y, w, 'Intern')"),
        ];
        let labels = label_gen(&fgen, &w);
        assert_eq!(labels.len(), 2);
        let first: Vec<String> = labels[0]
            .as_ref()
            .unwrap()
            .iter()
            .map(|v| v.display_with(&c).to_string())
            .collect();
        assert_eq!(first.len(), 1);
        assert!(first[0].contains("Meetings(x, y)"));
        let second = labels[1].as_ref().unwrap();
        assert_eq!(second.len(), 1);
        assert!(fdc_cq::containment::equivalent(second[0], &fgen[2]));
    }

    #[test]
    fn label_gen_flags_unanswerable_views_as_top() {
        let c = catalog();
        // Only the time-column view is available; the full Meetings view is
        // unanswerable.
        let fgen = vec![q(&c, "V2(x) :- Meetings(x, y)")];
        let w = vec![
            q(&c, "P(x, y) :- Meetings(x, y)"),
            q(&c, "P(x) :- Meetings(x, y)"),
        ];
        let labels = label_gen(&fgen, &w);
        assert!(labels[0].is_none());
        assert_eq!(labels[1].as_ref().unwrap().len(), 1);
    }

    #[test]
    fn label_gen_collects_every_sufficient_view() {
        let c = catalog();
        // Both the full view and the projection can answer the projection
        // query, so ℓ⁺ has two elements.
        let fgen = vec![
            q(&c, "V1(x, y) :- Meetings(x, y)"),
            q(&c, "V2(x) :- Meetings(x, y)"),
        ];
        let w = vec![q(&c, "P(x) :- Meetings(x, y)")];
        let labels = label_gen(&fgen, &w);
        assert_eq!(labels[0].as_ref().unwrap().len(), 2);
    }
}
