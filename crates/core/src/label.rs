//! Disclosure labels and their compressed representation (Section 6.1).
//!
//! For a single-atom query `V` the labelers compute
//! `ℓ⁺(V) = {Vi ∈ Fgen : {V} ⪯ {Vi}}` — the set of security views that can
//! answer `V`.  Storing `ℓ⁺` instead of the GLB it denotes makes label
//! comparisons cheap:
//!
//! > `ℓ(V) ⪯ ℓ(V′)` if and only if `ℓ⁺(V) ⊇ ℓ⁺(V′)`.
//!
//! Since two views are only comparable when they are defined over the same
//! base relation, `ℓ⁺` is stored per relation as a bit mask: an
//! [`AtomLabel`] pairs a relation id with a mask of the security views of
//! that relation, and packs into a single 64-bit [`PackedLabel`] exactly as
//! in the paper ("the low 32 bits … track which base relation a view
//! corresponds to, and the remaining 32 bits represent the elements of
//! `Fgen` associated with that relation").  A multi-atom query's label
//! ([`DisclosureLabel`]) is an array of atom labels, and labels of an
//! `r`-atom and an `s`-atom query are compared in `O(r·s)`.

use std::fmt;

use fdc_cq::RelId;

use crate::security_views::{SecurityViewId, SecurityViews};

/// A bit mask over the security views of one relation.
///
/// Bit `i` corresponds to the view whose [`bit`](crate::security_views::SecurityView::bit)
/// field is `i`.
pub type ViewMask = u64;

/// The `ℓ⁺` label of a single-atom query: the set of security views (all
/// over the same base relation) that can answer it.
///
/// An empty mask means *no* security view answers the atom — the label is
/// the top element ⊤ of the lattice of disclosure labels ("more than
/// everything in `Fgen`"), which is consistent with the `⊇` comparison rule:
/// every label is `⪯` ⊤, and ⊤ is only `⪯` another ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomLabel {
    /// The base relation of the labeled atom.
    pub relation: RelId,
    /// Mask of the security views (of that relation) that answer the atom.
    pub mask: ViewMask,
}

impl AtomLabel {
    /// Builds an atom label from parts.
    pub fn new(relation: RelId, mask: ViewMask) -> Self {
        AtomLabel { relation, mask }
    }

    /// The ⊤ label for an atom over `relation` (no view answers it).
    pub fn top(relation: RelId) -> Self {
        AtomLabel { relation, mask: 0 }
    }

    /// True if no security view answers the atom.
    pub fn is_top(&self) -> bool {
        self.mask == 0
    }

    /// Number of security views that answer the atom.
    pub fn view_count(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// `self ⪯ other` in the lattice of disclosure labels:
    /// the information revealed by `self`'s atom is no more than that of
    /// `other`'s atom.  Requires the same base relation and `ℓ⁺` superset.
    pub fn leq(&self, other: &AtomLabel) -> bool {
        self.relation == other.relation && (other.mask & !self.mask) == 0
    }

    /// Packs the label into a single 64-bit word (Section 6.1).
    ///
    /// The packed form stores a 32-bit view mask, so it is faithful only
    /// for relations within
    /// [`MAX_PACKED_VIEWS_PER_RELATION`](crate::security_views::MAX_PACKED_VIEWS_PER_RELATION)
    /// (= 32) views.  The online-mutation surfaces that feed the packed
    /// serving path (`add_view`, the service's `AddSecurityView`) enforce
    /// that budget, so packed masks never truncate there; registries built
    /// wider at construction (up to the 64-view unpacked capacity, e.g. the
    /// case study's) must stay on the unpacked representation, and debug
    /// builds assert the constraint here.
    pub fn pack(&self) -> PackedLabel {
        debug_assert!(
            self.mask <= u64::from(u32::MAX),
            "packed labels support at most 32 views per relation (mask {:#x})",
            self.mask
        );
        PackedLabel::new(self.relation, self.mask as u32)
    }

    /// The security-view ids this label denotes, resolved through the
    /// registry.
    pub fn views(&self, registry: &SecurityViews) -> Vec<SecurityViewId> {
        registry
            .views_for_relation(self.relation)
            .iter()
            .copied()
            .filter(|id| self.mask & (1u64 << registry.view(*id).bit) != 0)
            .collect()
    }
}

/// The paper's packed 64-bit label: relation id in the low 32 bits, view
/// mask in the high 32 bits.
///
/// "In this way, a single 64-bit integer can store a disclosure label for a
/// disclosure lattice with up to 2³² distinct relations, each of which is
/// associated with 32 distinct elements from `Fgen`."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PackedLabel(pub u64);

impl PackedLabel {
    /// Packs a relation id and a 32-bit view mask.
    pub fn new(relation: RelId, mask: u32) -> Self {
        PackedLabel(((mask as u64) << 32) | relation.0 as u64)
    }

    /// The relation id stored in the low 32 bits.
    pub fn relation(self) -> RelId {
        RelId((self.0 & 0xFFFF_FFFF) as u32)
    }

    /// The view mask stored in the high 32 bits.
    pub fn mask(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// `self ⪯ other` (same relation, `ℓ⁺` superset) as a pair of bit-mask
    /// operations on the packed representation.
    pub fn leq(self, other: PackedLabel) -> bool {
        self.relation() == other.relation() && (other.mask() & !self.mask()) == 0
    }

    /// Unpacks into an [`AtomLabel`].
    pub fn unpack(self) -> AtomLabel {
        AtomLabel {
            relation: self.relation(),
            mask: self.mask() as u64,
        }
    }
}

/// The disclosure label of a (possibly multi-atom) query: one
/// [`AtomLabel`] per dissected atom.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisclosureLabel {
    atoms: Vec<AtomLabel>,
}

impl DisclosureLabel {
    /// The label of the empty set of queries: ⊥ (nothing disclosed).
    pub fn bottom() -> Self {
        DisclosureLabel { atoms: Vec::new() }
    }

    /// Builds a label from per-atom labels.
    pub fn from_atoms(atoms: Vec<AtomLabel>) -> Self {
        let mut label = DisclosureLabel { atoms: Vec::new() };
        for a in atoms {
            label.push(a);
        }
        label
    }

    /// Adds one atom label, absorbing redundancy: an atom label that is
    /// already implied by (i.e. `⪯`) an existing one is dropped, and
    /// existing ones implied by the new one are removed.
    pub fn push(&mut self, atom: AtomLabel) {
        if self.atoms.iter().any(|existing| atom.leq(existing)) {
            return;
        }
        self.atoms.retain(|existing| !existing.leq(&atom));
        self.atoms.push(atom);
    }

    /// The per-atom labels.
    pub fn atoms(&self) -> &[AtomLabel] {
        &self.atoms
    }

    /// Number of atom labels.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if the label has no atom labels — i.e. it is ⊥.
    ///
    /// Alias of [`is_bottom`](Self::is_bottom), provided for the
    /// conventional `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// True if nothing is disclosed (⊥).
    pub fn is_bottom(&self) -> bool {
        self.atoms.is_empty()
    }

    /// True if some atom is unanswerable by any security view (contains ⊤).
    pub fn contains_top(&self) -> bool {
        self.atoms.iter().any(AtomLabel::is_top)
    }

    /// `self ⪯ other`: every atom of `self` is `⪯` some atom of `other`.
    ///
    /// This is the `O(r·s)` comparison of Section 6.1.
    pub fn leq(&self, other: &DisclosureLabel) -> bool {
        self.atoms
            .iter()
            .all(|a| other.atoms.iter().any(|b| a.leq(b)))
    }

    /// The cumulative label after also disclosing `other` (lattice LUB under
    /// the per-atom representation): the union of the atom labels, with
    /// redundancy absorbed.
    pub fn combine(&self, other: &DisclosureLabel) -> DisclosureLabel {
        let mut out = self.clone();
        for a in &other.atoms {
            out.push(*a);
        }
        out
    }

    /// In-place version of [`combine`](Self::combine).
    pub fn combine_in_place(&mut self, other: &DisclosureLabel) {
        for a in &other.atoms {
            self.push(*a);
        }
    }

    /// Packs every atom label (Section 6.1's array-of-u64 representation).
    pub fn pack(&self) -> Vec<PackedLabel> {
        self.atoms.iter().map(AtomLabel::pack).collect()
    }

    /// Renders the label as the set of security-view names it requires, one
    /// alternative set per atom (the views of one atom's `ℓ⁺` are
    /// interchangeable).
    pub fn describe(&self, registry: &SecurityViews) -> String {
        if self.atoms.is_empty() {
            return "⊥ (nothing disclosed)".to_owned();
        }
        let mut parts = Vec::new();
        for atom in &self.atoms {
            if atom.is_top() {
                parts.push(format!(
                    "⊤ on {} (no security view answers this atom)",
                    registry.catalog().name(atom.relation)
                ));
                continue;
            }
            let names: Vec<&str> = atom
                .views(registry)
                .into_iter()
                .map(|id| registry.view(id).name.as_str())
                .collect();
            parts.push(format!("one of {{{}}}", names.join(", ")));
        }
        parts.join(" and ")
    }
}

impl fmt::Display for DisclosureLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{:#x}", a.relation, a.mask)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(i: u32) -> RelId {
        RelId(i)
    }

    #[test]
    fn atom_label_comparisons_follow_the_superset_rule() {
        let narrow = AtomLabel::new(rel(0), 0b0001); // answerable only by view 0
        let wide = AtomLabel::new(rel(0), 0b0111); // answerable by views 0,1,2
                                                   // The widely-answerable atom reveals less information.
        assert!(wide.leq(&narrow));
        assert!(!narrow.leq(&wide));
        // Reflexivity.
        assert!(narrow.leq(&narrow));
        // Different relations are incomparable.
        let other_rel = AtomLabel::new(rel(1), 0b0111);
        assert!(!wide.leq(&other_rel));
        assert!(!other_rel.leq(&wide));
    }

    #[test]
    fn top_labels_behave_like_the_top_element() {
        let top = AtomLabel::top(rel(0));
        let some = AtomLabel::new(rel(0), 0b10);
        assert!(top.is_top());
        assert!(!some.is_top());
        // Everything (over the same relation) is ⪯ ⊤ ...
        assert!(some.leq(&top));
        // ... and ⊤ is only ⪯ ⊤.
        assert!(!top.leq(&some));
        assert!(top.leq(&AtomLabel::top(rel(0))));
        assert_eq!(top.view_count(), 0);
        assert_eq!(some.view_count(), 1);
    }

    #[test]
    fn packing_round_trips() {
        let label = AtomLabel::new(rel(7), 0b1011);
        let packed = label.pack();
        assert_eq!(packed.relation(), rel(7));
        assert_eq!(packed.mask(), 0b1011);
        assert_eq!(packed.unpack(), label);
        // Packed comparison agrees with unpacked comparison.
        let other = AtomLabel::new(rel(7), 0b0011);
        assert_eq!(packed.leq(other.pack()), label.leq(&other));
        assert_eq!(other.pack().leq(packed), other.leq(&label));
    }

    #[test]
    fn packed_label_layout_matches_the_paper() {
        let packed = PackedLabel::new(rel(3), 0b101);
        // Low 32 bits: relation id; high 32 bits: view mask.
        assert_eq!(packed.0 & 0xFFFF_FFFF, 3);
        assert_eq!(packed.0 >> 32, 0b101);
    }

    #[test]
    fn multi_atom_comparison_is_pairwise() {
        let meetings_full = AtomLabel::new(rel(0), 0b01);
        let meetings_any = AtomLabel::new(rel(0), 0b11);
        let contacts = AtomLabel::new(rel(1), 0b1);

        let q_small = DisclosureLabel::from_atoms(vec![meetings_any]);
        let q_join = DisclosureLabel::from_atoms(vec![meetings_full, contacts]);

        // Disclosing the join reveals at least as much as the projection.
        assert!(q_small.leq(&q_join));
        assert!(!q_join.leq(&q_small));
        // ⊥ is below everything.
        assert!(DisclosureLabel::bottom().leq(&q_small));
        assert!(!q_small.leq(&DisclosureLabel::bottom()));
        assert!(DisclosureLabel::bottom().is_bottom());
        assert!(!q_join.is_bottom());
    }

    #[test]
    fn push_absorbs_redundant_atom_labels() {
        let mut label = DisclosureLabel::bottom();
        let weak = AtomLabel::new(rel(0), 0b111);
        let strong = AtomLabel::new(rel(0), 0b001);
        label.push(weak);
        assert_eq!(label.len(), 1);
        // Re-pushing the same label changes nothing.
        label.push(weak);
        assert_eq!(label.len(), 1);
        // Pushing a strictly stronger label replaces the weaker one.
        label.push(strong);
        assert_eq!(label.len(), 1);
        assert_eq!(label.atoms()[0], strong);
        // Pushing a weaker one afterwards is a no-op.
        label.push(weak);
        assert_eq!(label.len(), 1);
        assert_eq!(label.atoms()[0], strong);
    }

    #[test]
    fn combine_is_the_cumulative_lub() {
        let a = DisclosureLabel::from_atoms(vec![AtomLabel::new(rel(0), 0b11)]);
        let b = DisclosureLabel::from_atoms(vec![AtomLabel::new(rel(1), 0b1)]);
        let ab = a.combine(&b);
        assert_eq!(ab.len(), 2);
        assert!(a.leq(&ab));
        assert!(b.leq(&ab));
        // Combining is monotone and idempotent.
        assert_eq!(ab.combine(&a), ab);
        let mut c = a.clone();
        c.combine_in_place(&b);
        assert_eq!(c, ab);
    }

    #[test]
    fn contains_top_detects_unanswerable_atoms() {
        let ok = DisclosureLabel::from_atoms(vec![AtomLabel::new(rel(0), 0b1)]);
        let not_ok =
            DisclosureLabel::from_atoms(vec![AtomLabel::new(rel(0), 0b1), AtomLabel::top(rel(1))]);
        assert!(!ok.contains_top());
        assert!(not_ok.contains_top());
    }

    #[test]
    fn display_and_pack_of_multi_atom_labels() {
        let label = DisclosureLabel::from_atoms(vec![
            AtomLabel::new(rel(0), 0b1),
            AtomLabel::new(rel(1), 0b110),
        ]);
        let packed = label.pack();
        assert_eq!(packed.len(), 2);
        assert_eq!(packed[0].relation(), rel(0));
        assert_eq!(packed[1].mask(), 0b110);
        let text = label.to_string();
        assert!(text.contains("rel#0"));
        assert!(text.contains("0x6"));
    }

    #[test]
    fn describe_names_the_required_views() {
        let registry = SecurityViews::paper_example();
        let catalog = registry.catalog();
        let meetings = catalog.resolve("Meetings").unwrap();
        let contacts = catalog.resolve("Contacts").unwrap();

        // An atom answerable only by V1 plus an atom answerable by V3.
        let label = DisclosureLabel::from_atoms(vec![
            AtomLabel::new(meetings, 0b01),
            AtomLabel::new(contacts, 0b1),
        ]);
        let text = label.describe(&registry);
        assert!(text.contains("V1"));
        assert!(text.contains("V3"));

        assert!(DisclosureLabel::bottom().describe(&registry).contains('⊥'));
        let top = DisclosureLabel::from_atoms(vec![AtomLabel::top(meetings)]);
        assert!(top.describe(&registry).contains('⊤'));
    }
}
