//! The GLB machinery of Section 5.1: `GenMGU` and `GLBSingleton`.
//!
//! The greatest lower bound of two single-atom views — the most informative
//! view computable from either one in isolation — is obtained by a modified
//! most-general-unifier computation over the two view bodies.  The three
//! modifications relative to a standard mgu (Section 5.1) are:
//!
//! 1. unifying a **constant with an existential variable fails** (the
//!    boolean views of Example 5.1 share no single-atom lower bound other
//!    than ⊥);
//! 2. unifying an **existential** variable with any variable yields an
//!    existential variable;
//! 3. unifying two **distinguished** variables yields a distinguished
//!    variable.
//!
//! After unification an extra check (Example 5.3) rejects results that force
//! a *new* equality between two positions of one original atom when at least
//! one of the two original terms was existential.

use fdc_cq::{Atom, ConjunctiveQuery, Term, VarId, VarKind};

/// The outcome of a GLB computation on single-atom views.
///
/// `Bottom` is the paper's ⊥: the two views have no common single-atom
/// information beyond the empty view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Glb {
    /// The GLB is the contained single-atom view.
    View(ConjunctiveQuery),
    /// The GLB is ⊥ (no information in common).
    Bottom,
}

impl Glb {
    /// Returns the view if the GLB is not ⊥.
    pub fn view(&self) -> Option<&ConjunctiveQuery> {
        match self {
            Glb::View(q) => Some(q),
            Glb::Bottom => None,
        }
    }

    /// True if the GLB is ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Glb::Bottom)
    }
}

/// A node of the unification graph: a variable of one of the two views
/// (tagged by side) — constants are handled separately via class bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Left(VarId),
    Right(VarId),
}

/// Union-find over the variables of both views plus per-class constant and
/// kind bookkeeping.
struct Unifier {
    /// parent pointers, indexed by node index.
    parent: Vec<usize>,
    /// Per-root: the constant bound to the class, if any.
    constant: Vec<Option<fdc_cq::Constant>>,
    /// Per-root: true if any member of the class is existential.
    has_existential: Vec<bool>,
    left_offset: usize,
}

impl Unifier {
    fn new(left: &ConjunctiveQuery, right: &ConjunctiveQuery) -> Self {
        let n_left = left.num_vars();
        let n_right = right.num_vars();
        let total = n_left + n_right;
        let mut has_existential = vec![false; total];
        for (i, kind) in left.var_kinds().iter().enumerate() {
            has_existential[i] = kind.is_existential();
        }
        for (i, kind) in right.var_kinds().iter().enumerate() {
            has_existential[n_left + i] = kind.is_existential();
        }
        Unifier {
            parent: (0..total).collect(),
            constant: vec![None; total],
            has_existential,
            left_offset: n_left,
        }
    }

    fn node_index(&self, node: Node) -> usize {
        match node {
            Node::Left(v) => v.index(),
            Node::Right(v) => self.left_offset + v.index(),
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Unions two classes; returns `false` on a constant clash or a
    /// constant-vs-existential clash.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        let merged_constant = match (self.constant[ra].clone(), self.constant[rb].clone()) {
            (Some(c1), Some(c2)) if c1 != c2 => return false,
            (Some(c), _) | (_, Some(c)) => Some(c),
            (None, None) => None,
        };
        let merged_existential = self.has_existential[ra] || self.has_existential[rb];
        // Rule 1: a constant may not be unified with an existential variable.
        if merged_constant.is_some() && merged_existential {
            return false;
        }
        self.parent[rb] = ra;
        self.constant[ra] = merged_constant;
        self.has_existential[ra] = merged_existential;
        true
    }

    /// Binds a class to a constant; fails on clash or if the class contains
    /// an existential variable (rule 1).
    fn bind_constant(&mut self, a: usize, c: &fdc_cq::Constant) -> bool {
        let ra = self.find(a);
        match &self.constant[ra] {
            Some(existing) if existing != c => return false,
            _ => {}
        }
        if self.has_existential[ra] {
            return false;
        }
        self.constant[ra] = Some(c.clone());
        true
    }
}

/// Computes the generalized most general unifier of the bodies of two
/// single-atom views (the `GenMGU` subroutine of Section 5.1).
///
/// Returns `None` when unification fails (which the caller interprets as a
/// ⊥ GLB): different relations, clashing constants, or a constant meeting an
/// existential variable.
///
/// The result, when it exists, is returned as a single-atom query whose
/// distinguished variables are exactly the unified classes that contain only
/// distinguished variables.
pub fn gen_mgu(left: &ConjunctiveQuery, right: &ConjunctiveQuery) -> Option<ConjunctiveQuery> {
    mgu_with_check(left, right, false)
}

/// `GLBSingleton` (Section 5.1): the GLB of two singleton sets of
/// single-atom views.
///
/// Runs [`gen_mgu`] and additionally applies the Example 5.3 corner-case
/// check: if unification forces a *new* equality between two positions of
/// the same original atom and at least one of the two original terms was an
/// existential variable, the GLB is ⊥.
pub fn glb_singleton(left: &ConjunctiveQuery, right: &ConjunctiveQuery) -> Glb {
    match mgu_with_check(left, right, true) {
        Some(q) => Glb::View(q),
        None => Glb::Bottom,
    }
}

fn mgu_with_check(
    left: &ConjunctiveQuery,
    right: &ConjunctiveQuery,
    apply_new_equality_check: bool,
) -> Option<ConjunctiveQuery> {
    if !left.is_single_atom() || !right.is_single_atom() {
        return None;
    }
    let l_atom = &left.atoms()[0];
    let r_atom = &right.atoms()[0];
    if l_atom.relation != r_atom.relation || l_atom.arity() != r_atom.arity() {
        return None;
    }

    let mut unifier = Unifier::new(left, right);

    for (l_term, r_term) in l_atom.terms.iter().zip(r_atom.terms.iter()) {
        match (l_term, r_term) {
            (Term::Var(lv, _), Term::Var(rv, _)) => {
                let a = unifier.node_index(Node::Left(*lv));
                let b = unifier.node_index(Node::Right(*rv));
                if !unifier.union(a, b) {
                    return None;
                }
            }
            (Term::Var(lv, _), Term::Const(c)) => {
                let a = unifier.node_index(Node::Left(*lv));
                if !unifier.bind_constant(a, c) {
                    return None;
                }
            }
            (Term::Const(c), Term::Var(rv, _)) => {
                let b = unifier.node_index(Node::Right(*rv));
                if !unifier.bind_constant(b, c) {
                    return None;
                }
            }
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    return None;
                }
            }
        }
    }

    // Example 5.3 check: a *new* equality between two positions of the same
    // original atom, where at least one original term was existential.
    if apply_new_equality_check {
        for (atom, side_is_left) in [(l_atom, true), (r_atom, false)] {
            for i in 0..atom.arity() {
                for j in (i + 1)..atom.arity() {
                    let ti = &atom.terms[i];
                    let tj = &atom.terms[j];
                    if ti == tj {
                        continue; // the equality already existed
                    }
                    let class_of =
                        |unifier: &mut Unifier, term: &Term, other: &Term| -> Option<usize> {
                            match term {
                                Term::Var(v, _) => {
                                    let node = if side_is_left {
                                        Node::Left(*v)
                                    } else {
                                        Node::Right(*v)
                                    };
                                    let idx = unifier.node_index(node);
                                    Some(unifier.find(idx))
                                }
                                Term::Const(c) => {
                                    // A constant "class" only matters when the
                                    // other side is a variable bound to the same
                                    // constant; handled below via the constant
                                    // binding of the variable's class.
                                    let _ = (c, other);
                                    None
                                }
                            }
                        };
                    let any_existential = ti.is_existential() || tj.is_existential();
                    if !any_existential {
                        continue;
                    }
                    match (ti, tj) {
                        (Term::Var(_, _), Term::Var(_, _)) => {
                            let ci = class_of(&mut unifier, ti, tj);
                            let cj = class_of(&mut unifier, tj, ti);
                            if ci.is_some() && ci == cj {
                                return None;
                            }
                        }
                        (Term::Var(v, _), Term::Const(c)) | (Term::Const(c), Term::Var(v, _)) => {
                            let node = if side_is_left {
                                Node::Left(*v)
                            } else {
                                Node::Right(*v)
                            };
                            let idx = unifier.node_index(node);
                            let root = unifier.find(idx);
                            if unifier.constant[root].as_ref() == Some(c) {
                                return None;
                            }
                        }
                        (Term::Const(_), Term::Const(_)) => {}
                    }
                }
            }
        }
    }

    // Build the result atom: one term per position, determined by the class
    // of the left term at that position (the right term is in the same class
    // by construction).
    let mut class_to_new_var: std::collections::HashMap<usize, VarId> =
        std::collections::HashMap::new();
    let mut var_kinds: Vec<VarKind> = Vec::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut result_terms: Vec<Term> = Vec::with_capacity(l_atom.arity());

    for (l_term, r_term) in l_atom.terms.iter().zip(r_atom.terms.iter()) {
        // Locate the class for this position.
        let root = match (l_term, r_term) {
            (Term::Var(lv, _), _) => Some(unifier.find(unifier.node_index(Node::Left(*lv)))),
            (_, Term::Var(rv, _)) => Some(unifier.find(unifier.node_index(Node::Right(*rv)))),
            (Term::Const(c), Term::Const(_)) => {
                result_terms.push(Term::Const(c.clone()));
                None
            }
        };
        let Some(root) = root else { continue };
        if let Some(c) = &unifier.constant[root] {
            result_terms.push(Term::Const(c.clone()));
            continue;
        }
        let kind = if unifier.has_existential[root] {
            VarKind::Existential
        } else {
            VarKind::Distinguished
        };
        let next_id = VarId(class_to_new_var.len() as u32);
        let var = *class_to_new_var.entry(root).or_insert_with(|| {
            var_kinds.push(kind);
            var_names.push(format!("u{}", next_id.0));
            next_id
        });
        result_terms.push(Term::Var(var, var_kinds[var.index()]));
    }

    let atom = Atom::new(l_atom.relation, result_terms);
    ConjunctiveQuery::from_parts(vec![atom], var_kinds, var_names).ok()
}

/// The GLB of two *sets* of single-atom views (end of Section 5.1): the
/// union of the pairwise `GLBSingleton` results, dropping ⊥.
pub fn glb_sets(left: &[ConjunctiveQuery], right: &[ConjunctiveQuery]) -> Vec<ConjunctiveQuery> {
    let mut out: Vec<ConjunctiveQuery> = Vec::new();
    for l in left {
        for r in right {
            if let Glb::View(q) = glb_singleton(l, r) {
                // Deduplicate by information equivalence to keep results small.
                if !out
                    .iter()
                    .any(|existing| fdc_cq::containment::equivalent(existing, &q))
                {
                    out.push(q);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::{parser::parse_query, Catalog};

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    #[test]
    fn example_5_2_overlap_of_two_projections() {
        // V6(x, y) :- C(x, y, z) and V7(x, z) :- C(x, y, z): the GenMGU is
        // V9(x) :- C(x, y, z), the projection on the shared column.
        let c = catalog();
        let v6 = q(&c, "V6(x, y) :- Contacts(x, y, z)");
        let v7 = q(&c, "V7(x, z) :- Contacts(x, y, z)");
        let v9 = q(&c, "V9(x) :- Contacts(x, y, z)");

        let mgu = gen_mgu(&v6, &v7).expect("projections over one relation unify");
        assert!(fdc_cq::containment::equivalent(&mgu, &v9));

        let glb = glb_singleton(&v6, &v7);
        assert!(fdc_cq::containment::equivalent(glb.view().unwrap(), &v9));
        assert!(!glb.is_bottom());
    }

    #[test]
    fn example_5_1_constant_meets_existential() {
        let c = catalog();
        let v13 = q(&c, "V13() :- Meetings(9, 'Jim')");
        let v14 = q(&c, "V14() :- Meetings(x, y)");
        assert_eq!(gen_mgu(&v13, &v14), None);
        assert!(glb_singleton(&v13, &v14).is_bottom());
        assert!(glb_singleton(&v14, &v13).is_bottom());
    }

    #[test]
    fn example_5_3_new_equality_on_existentials() {
        let c = catalog();
        let v14 = q(&c, "V14() :- Meetings(x, y)");
        let v15 = q(&c, "V15() :- Meetings(z, z)");
        // The raw GenMGU exists ([M(we, we)]) ...
        let mgu = gen_mgu(&v14, &v15).expect("unification itself succeeds");
        assert!(mgu.atoms()[0].has_repeated_vars());
        // ... but GLBSingleton applies the corner-case check and returns ⊥.
        assert!(glb_singleton(&v14, &v15).is_bottom());
        assert!(glb_singleton(&v15, &v14).is_bottom());
    }

    #[test]
    fn figure_4_pairwise_glbs() {
        // Example 4.4 / 6.1: GLB({V6},{V7}) ≡ {V9}, GLB({V6},{V8}) ≡ {V10},
        // GLB({V7},{V8}) ≡ {V11}.
        let c = catalog();
        let v6 = q(&c, "V6(x, y) :- Contacts(x, y, z)");
        let v7 = q(&c, "V7(x, z) :- Contacts(x, y, z)");
        let v8 = q(&c, "V8(y, z) :- Contacts(x, y, z)");
        let v9 = q(&c, "V9(x) :- Contacts(x, y, z)");
        let v10 = q(&c, "V10(y) :- Contacts(x, y, z)");
        let v11 = q(&c, "V11(z) :- Contacts(x, y, z)");

        let cases = [(&v6, &v7, &v9), (&v6, &v8, &v10), (&v7, &v8, &v11)];
        for (a, b, expected) in cases {
            let glb = glb_singleton(a, b);
            let got = glb.view().expect("two-column projections overlap");
            assert!(
                fdc_cq::containment::equivalent(got, expected),
                "GLB mismatch: got {got:?}"
            );
        }
    }

    #[test]
    fn glb_with_the_full_view_is_the_smaller_view() {
        let c = catalog();
        let v3 = q(&c, "V3(x, y, z) :- Contacts(x, y, z)");
        let v6 = q(&c, "V6(x, y) :- Contacts(x, y, z)");
        let glb = glb_singleton(&v3, &v6);
        assert!(fdc_cq::containment::equivalent(glb.view().unwrap(), &v6));
        // And symmetrically.
        let glb = glb_singleton(&v6, &v3);
        assert!(fdc_cq::containment::equivalent(glb.view().unwrap(), &v6));
    }

    #[test]
    fn glb_of_identical_views_is_the_view_itself() {
        let c = catalog();
        for text in [
            "V1(x, y) :- Meetings(x, y)",
            "V2(x) :- Meetings(x, y)",
            "V5() :- Meetings(x, y)",
            "Vc(x) :- Meetings(x, 'Cathy')",
        ] {
            let v = q(&c, text);
            let glb = glb_singleton(&v, &v);
            assert!(
                fdc_cq::containment::equivalent(glb.view().unwrap(), &v),
                "self-GLB changed {text}"
            );
        }
    }

    #[test]
    fn different_relations_have_bottom_glb() {
        let c = catalog();
        let v2 = q(&c, "V2(x) :- Meetings(x, y)");
        let v9 = q(&c, "V9(x) :- Contacts(x, y, z)");
        assert!(glb_singleton(&v2, &v9).is_bottom());
        assert_eq!(gen_mgu(&v2, &v9), None);
    }

    #[test]
    fn constants_meeting_distinguished_variables_select() {
        let c = catalog();
        // Vc(x) :- M(x, 'Cathy') vs V1(x, y) :- M(x, y): the overlap is the
        // selection itself (computable from V1 by selection, from Vc
        // trivially).
        let vc = q(&c, "Vc(x) :- Meetings(x, 'Cathy')");
        let v1 = q(&c, "V1(x, y) :- Meetings(x, y)");
        let glb = glb_singleton(&vc, &v1);
        assert!(fdc_cq::containment::equivalent(glb.view().unwrap(), &vc));
    }

    #[test]
    fn clashing_constants_give_bottom() {
        let c = catalog();
        let cathy = q(&c, "V(x) :- Meetings(x, 'Cathy')");
        let bob = q(&c, "V(x) :- Meetings(x, 'Bob')");
        assert!(glb_singleton(&cathy, &bob).is_bottom());
    }

    #[test]
    fn same_constant_survives_unification() {
        let c = catalog();
        let a = q(&c, "V(x) :- Meetings(x, 'Cathy')");
        let b = q(&c, "V() :- Meetings(y, 'Cathy')");
        let glb = glb_singleton(&a, &b);
        // The overlap is the boolean "does anyone meet Cathy" view: the
        // distinguished x of `a` meets the existential y of `b`, so the
        // result column is existential.
        let expected = q(&c, "V() :- Meetings(x, 'Cathy')");
        assert!(fdc_cq::containment::equivalent(
            glb.view().unwrap(),
            &expected
        ));
    }

    #[test]
    fn glb_sets_unions_pairwise_results() {
        let c = catalog();
        let v6 = q(&c, "V6(x, y) :- Contacts(x, y, z)");
        let v7 = q(&c, "V7(x, z) :- Contacts(x, y, z)");
        let v8 = q(&c, "V8(y, z) :- Contacts(x, y, z)");
        let v2 = q(&c, "V2(x) :- Meetings(x, y)");

        // GLB({V6, V2}, {V7, V8}) = {V9, V10} (+ nothing from V2, which lives
        // on a different relation).
        let out = glb_sets(&[v6.clone(), v2.clone()], &[v7.clone(), v8.clone()]);
        assert_eq!(out.len(), 2);
        let v9 = q(&c, "V9(x) :- Contacts(x, y, z)");
        let v10 = q(&c, "V10(y) :- Contacts(x, y, z)");
        assert!(out.iter().any(|o| fdc_cq::containment::equivalent(o, &v9)));
        assert!(out.iter().any(|o| fdc_cq::containment::equivalent(o, &v10)));

        // Deduplication by equivalence: identical inputs collapse.
        let out = glb_sets(&[v6.clone(), v6.clone()], std::slice::from_ref(&v6));
        assert_eq!(out.len(), 1);

        // Disjoint relations: empty result.
        let out = glb_sets(std::slice::from_ref(&v2), std::slice::from_ref(&v8));
        assert!(out.is_empty());
    }

    #[test]
    fn multi_atom_inputs_are_rejected() {
        let c = catalog();
        let multi = q(&c, "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let v1 = q(&c, "V1(x, y) :- Meetings(x, y)");
        assert_eq!(gen_mgu(&multi, &v1), None);
        assert!(glb_singleton(&multi, &v1).is_bottom());
    }

    #[test]
    fn glb_respects_the_rewriting_order() {
        // The GLB must be rewritable from each input (it is a lower bound).
        use fdc_cq::rewriting::rewritable_from_single;
        let c = catalog();
        let views = [
            q(&c, "V3(x, y, z) :- Contacts(x, y, z)"),
            q(&c, "V6(x, y) :- Contacts(x, y, z)"),
            q(&c, "V7(x, z) :- Contacts(x, y, z)"),
            q(&c, "V8(y, z) :- Contacts(x, y, z)"),
            q(&c, "V9(x) :- Contacts(x, y, z)"),
            q(&c, "V12() :- Contacts(x, y, z)"),
        ];
        for a in &views {
            for b in &views {
                if let Glb::View(g) = glb_singleton(a, b) {
                    assert!(
                        rewritable_from_single(&g, a),
                        "GLB of {a:?} and {b:?} is not rewritable from the first input"
                    );
                    assert!(
                        rewritable_from_single(&g, b),
                        "GLB of {a:?} and {b:?} is not rewritable from the second input"
                    );
                }
            }
        }
    }
}
