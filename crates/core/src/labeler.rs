//! Production disclosure labelers for arbitrary conjunctive queries.
//!
//! All three labelers implement the same pipeline — `Dissect` (Section 5.2)
//! followed by per-atom `ℓ⁺` computation against the registered security
//! views — and differ only in the engineering of the per-atom step, exactly
//! like the three measured variants of the paper's Figure 5:
//!
//! * [`BaselineLabeler`] — a straightforward adaptation of `LabelGen`
//!   (Section 4.2): for every dissected atom it scans **every** registered
//!   security view and runs the rewriting check.
//! * [`HashPartitionedLabeler`] — pre-partitions the security views by base
//!   relation in a hash table, so each atom is only checked against the
//!   views of its own relation.
//! * [`BitVectorLabeler`] — hash partitioning plus the packed bit-vector
//!   `ℓ⁺` representation of Section 6.1; additionally caches the structural
//!   shape of each security view so the per-candidate check avoids the
//!   general rewriting machinery for the common projection-style views.
//!
//! A fourth variant goes beyond the paper's measured configurations:
//!
//! * [`CachedLabeler`] — a [`BitVectorLabeler`] plus id-keyed memo tables
//!   over the **interned query plane** (`fdc_cq::intern`): queries intern to
//!   dense canonical [`QueryId`]s, so the whole-query cache is a sharded
//!   slot vector (a hit skips folding, dissection and labeling entirely —
//!   and for pre-interned callers, hashing too) and the per-atom `ℓ⁺` cache
//!   is a plain indexed table over the ids `dissect_interned` emits.
//!   Combined with the sharded batch entry point [`label_queries_parallel`]
//!   this is the high-throughput serving path.  The caches are versioned
//!   with the registry's per-relation epochs, so the view universe can
//!   change online ([`CachedLabeler::add_view`]) without flushing: stale
//!   entries re-derive just their stale atoms.
//!
//! All variants produce identical [`DisclosureLabel`]s; the equivalence is
//! asserted by the test suite and exercised again by the Figure 5 benchmark.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use fdc_cq::intern::{ITerm, QueryId, QueryInterner};
use fdc_cq::rewriting::{interned_rewritable_from_single, rewritable_from_single};
use fdc_cq::{ConjunctiveQuery, RelId, Term, VarKind};

use crate::dissect::{dissect, dissect_interned};
use crate::error::Result;
use crate::label::{AtomLabel, DisclosureLabel, PackedLabel, ViewMask};
use crate::pool::{WorkerContext, WorkerPool};
use crate::security_views::{SecurityViewId, SecurityViews};

/// The shared handle to a [`QueryInterner`]: one interner per serving stack,
/// shared between the [`CachedLabeler`] that owns it, the
/// `DisclosureService` front door, and any workload generator that pre-
/// interns its query pool.  The interner only grows, so sharing the handle
/// never invalidates an issued [`QueryId`].
pub type SharedQueryInterner = Arc<RwLock<QueryInterner>>;

/// A disclosure labeler for conjunctive queries.
pub trait QueryLabeler {
    /// Labels a single query.
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel;

    /// Labels a set of queries (the cumulative label of answering them all).
    fn label_queries(&self, queries: &[ConjunctiveQuery]) -> DisclosureLabel {
        let mut out = DisclosureLabel::bottom();
        for q in queries {
            out.combine_in_place(&self.label_query(q));
        }
        out
    }

    /// The security-view registry the labeler was built from.
    fn security_views(&self) -> &SecurityViews;
}

// ---------------------------------------------------------------------------
// Baseline: LabelGen with a linear scan over all security views.
// ---------------------------------------------------------------------------

/// The baseline labeler of Figure 5: `Dissect` + a linear scan of every
/// security view for every dissected atom.
#[derive(Debug, Clone)]
pub struct BaselineLabeler {
    views: SecurityViews,
}

impl BaselineLabeler {
    /// Builds a baseline labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        BaselineLabeler { views }
    }
}

impl QueryLabeler for BaselineLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mut mask: ViewMask = 0;
            // Deliberately scan the whole registry (no partitioning): this is
            // the "baseline" curve of Figure 5.
            for (_, view) in self.views.iter() {
                if view.relation == relation && rewritable_from_single(&atom_query, &view.query) {
                    mask |= 1u64 << view.bit;
                }
            }
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

// ---------------------------------------------------------------------------
// Hash-partitioned: only scan the views of the atom's relation.
// ---------------------------------------------------------------------------

/// The "hashing only" labeler of Figure 5: security views are pre-partitioned
/// by relation, so each atom is checked only against its own relation's views.
#[derive(Debug, Clone)]
pub struct HashPartitionedLabeler {
    views: SecurityViews,
    by_relation: HashMap<RelId, Vec<SecurityViewId>>,
}

impl HashPartitionedLabeler {
    /// Builds a hash-partitioned labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        let mut by_relation: HashMap<RelId, Vec<SecurityViewId>> = HashMap::new();
        for (id, view) in views.iter() {
            by_relation.entry(view.relation).or_default().push(id);
        }
        HashPartitionedLabeler { views, by_relation }
    }
}

impl QueryLabeler for HashPartitionedLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mut mask: ViewMask = 0;
            if let Some(candidates) = self.by_relation.get(&relation) {
                for id in candidates {
                    let view = self.views.view(*id);
                    if rewritable_from_single(&atom_query, &view.query) {
                        mask |= 1u64 << view.bit;
                    }
                }
            }
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

// ---------------------------------------------------------------------------
// Bit-vector: hash partitioning + precompiled view shapes + packed labels.
// ---------------------------------------------------------------------------

/// Pre-analyzed shape of a single-atom security view, used by
/// [`BitVectorLabeler`] to answer `{atom} ⪯ {view}` with plain bit tests in
/// the common case.
///
/// A *projection-style* view has no constants and no repeated variables: it
/// is fully described by the bit mask of the positions it exposes
/// (distinguished positions).  For such views, an atom query with exposed
/// positions `E`, constant positions `C` and no repeated variables is
/// answerable iff `E ∪ C ⊆ exposed(view)`.  Views or atoms that fall outside
/// this shape fall back to the general rewriting check.
#[derive(Debug, Clone)]
struct CompiledView {
    id: SecurityViewId,
    bit: u32,
    /// Bit `i` set iff position `i` of the view is a distinguished variable.
    exposed_positions: Option<u64>,
}

/// The fully optimized labeler of Figure 5 ("bit vectors + hashing") and
/// Section 6.1.
#[derive(Debug, Clone)]
pub struct BitVectorLabeler {
    views: SecurityViews,
    by_relation: HashMap<RelId, Vec<CompiledView>>,
}

impl BitVectorLabeler {
    /// Builds a bit-vector labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        let mut by_relation: HashMap<RelId, Vec<CompiledView>> = HashMap::new();
        for (id, view) in views.iter() {
            by_relation
                .entry(view.relation)
                .or_default()
                .push(CompiledView {
                    id,
                    bit: view.bit,
                    exposed_positions: projection_shape(&view.query),
                });
        }
        BitVectorLabeler { views, by_relation }
    }

    /// Labels a query and returns the packed representation directly.
    pub fn label_packed(&self, query: &ConjunctiveQuery) -> Vec<PackedLabel> {
        self.label_query(query).pack()
    }

    /// Registers one more security view online, recompiling only the
    /// affected relation's candidate list.
    ///
    /// The underlying [`SecurityViews`] registry validates the view (single
    /// atom, unique name, per-relation bit budget) and bumps the relation's
    /// epoch, so epoch-aware layers above (see
    /// [`CachedLabeler::add_view`]) notice the change lazily.
    ///
    /// Because this labeler serves the packed 64-bit path
    /// ([`label_packed`](Self::label_packed)), online additions are held to
    /// the **packed** per-relation budget
    /// ([`MAX_PACKED_VIEWS_PER_RELATION`](crate::security_views::MAX_PACKED_VIEWS_PER_RELATION)
    /// = 32): the 33rd view of a relation is rejected here rather than
    /// silently truncated out of every packed label in release builds.
    pub fn add_view(&mut self, name: &str, query: ConjunctiveQuery) -> Result<SecurityViewId> {
        use crate::security_views::MAX_PACKED_VIEWS_PER_RELATION;
        if let Some(atom) = query.atoms().first() {
            let existing = self.views.views_for_relation(atom.relation).len();
            if existing >= MAX_PACKED_VIEWS_PER_RELATION {
                return Err(crate::error::LabelError::TooManyViewsForRelation {
                    relation: self.views.catalog().name(atom.relation).to_owned(),
                    count: existing + 1,
                    limit: MAX_PACKED_VIEWS_PER_RELATION,
                });
            }
        }
        let id = self.views.add(name, query)?;
        let view = self.views.view(id);
        self.by_relation
            .entry(view.relation)
            .or_default()
            .push(CompiledView {
                id,
                bit: view.bit,
                exposed_positions: projection_shape(&view.query),
            });
        Ok(id)
    }

    /// Computes `ℓ⁺` of one dissected single-atom query as a packed view
    /// mask, using the compiled projection shapes where possible.
    ///
    /// This is the per-atom step of [`label_query`](QueryLabeler::label_query),
    /// exposed so that memoizing layers (see [`CachedLabeler`]) can fill cache
    /// misses without re-dissecting.  The query must be single-atom
    /// (multi-atom queries go through `Dissect` first); debug builds assert
    /// this, release builds would silently consider only the first atom.
    pub fn atom_mask(&self, atom_query: &ConjunctiveQuery) -> ViewMask {
        debug_assert!(
            atom_query.is_single_atom(),
            "atom_mask requires a dissected single-atom query"
        );
        let relation = atom_query.atoms()[0].relation;
        let mut mask: ViewMask = 0;
        if let Some(candidates) = self.by_relation.get(&relation) {
            let needs = atom_needs(atom_query);
            for compiled in candidates {
                let answers = match (needs, compiled.exposed_positions) {
                    // Fast path: projection-style atom vs projection-style
                    // view — answerable iff every needed position is
                    // exposed by the view.
                    (Some(needed), Some(exposed)) => needed & !exposed == 0,
                    // Fallback: the general rewriting check.
                    _ => rewritable_from_single(atom_query, &self.views.view(compiled.id).query),
                };
                if answers {
                    mask |= 1u64 << compiled.bit;
                }
            }
        }
        mask
    }
}

/// If the single-atom query is projection-style (no constants, no repeated
/// variables), returns the bit mask of positions holding distinguished
/// variables; otherwise `None`.
fn projection_shape(query: &ConjunctiveQuery) -> Option<u64> {
    let atom = query.atoms().first()?;
    if atom.arity() > 64 || atom.has_constants() || atom.has_repeated_vars() {
        return None;
    }
    let mut mask = 0u64;
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Var(_, VarKind::Distinguished) => mask |= 1u64 << i,
            Term::Var(_, VarKind::Existential) => {}
            Term::Const(_) => return None,
        }
    }
    Some(mask)
}

/// For a single-atom query without repeated variables, the mask of positions
/// a projection-style view must expose to answer it: the positions holding
/// distinguished variables or constants.  `None` if the atom has repeated
/// variables (those need the general rewriting check).
///
/// Constants are included because a selection such as `M(x, 'Cathy')` is
/// answerable from a projection view exactly when the constant's column is
/// exposed (the rewriting applies the selection on top of the view).
fn atom_needs(query: &ConjunctiveQuery) -> Option<u64> {
    let atom = query.atoms().first()?;
    if atom.arity() > 64 || atom.has_repeated_vars() {
        return None;
    }
    let mut needed = 0u64;
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Var(_, VarKind::Distinguished) | Term::Const(_) => needed |= 1u64 << i,
            Term::Var(_, VarKind::Existential) => {}
        }
    }
    Some(needed)
}

/// [`atom_needs`] over the interned flat representation: the needed-position
/// mask of one single-atom term slice, or `None` if the atom has repeated
/// variables (those need the general rewriting check).
fn interned_atom_needs(terms: &[ITerm]) -> Option<u64> {
    if terms.len() > 64 {
        return None;
    }
    let mut needed = 0u64;
    for (i, term) in terms.iter().enumerate() {
        if let Some(v) = term.var_index() {
            if terms[i + 1..].iter().any(|t| t.var_index() == Some(v)) {
                return None;
            }
        }
        match term {
            ITerm::Var(_, VarKind::Distinguished) | ITerm::Const(_) => needed |= 1u64 << i,
            ITerm::Var(_, VarKind::Existential) => {}
        }
    }
    Some(needed)
}

/// Computes `ℓ⁺` of one interned single-atom query against the compiled
/// per-relation candidates — the interned counterpart of
/// [`BitVectorLabeler::atom_mask`], and guaranteed to compute the same
/// mask: the projection fast path tests the same bit sets, and the
/// fallback runs the interned rewriting check against the interned view
/// definition.  Shared by the live [`CachedLabeler`] and its
/// [`LabelerSnapshot`]s, which differ only in where the result is cached.
fn interned_atom_mask(
    inner: &BitVectorLabeler,
    view_qids: &[QueryId],
    interner: &QueryInterner,
    atom: QueryId,
    relation: RelId,
) -> ViewMask {
    let atom_ref = interner.resolve(atom);
    debug_assert!(atom_ref.is_single_atom(), "dissected parts are single-atom");
    let needs = interned_atom_needs(atom_ref.atom_terms(0));
    let mut mask: ViewMask = 0;
    if let Some(candidates) = inner.by_relation.get(&relation) {
        for compiled in candidates {
            let answers = match (needs, compiled.exposed_positions) {
                (Some(needed), Some(exposed)) => needed & !exposed == 0,
                _ => interned_rewritable_from_single(
                    atom_ref,
                    interner.resolve(view_qids[compiled.id.index()]),
                ),
            };
            if answers {
                mask |= 1u64 << compiled.bit;
            }
        }
    }
    mask
}

/// Dissects an interned query into its single-atom parts, returning each
/// part's interned id, dense single-atom ordinal and relation.  Takes the
/// interner's write lock once (dissection may mint part ids).
fn dissect_part_ids(interner: &SharedQueryInterner, id: QueryId) -> Vec<(QueryId, u32, RelId)> {
    let mut interner = interner.write().unwrap_or_else(|e| e.into_inner());
    dissect_interned(&mut interner, id)
        .into_iter()
        .map(|(atom, relation)| {
            let ordinal = interner
                .single_atom_ordinal(atom)
                .expect("dissected parts are single-atom");
            (atom, ordinal, relation)
        })
        .collect()
}

/// Interns `query` if the implicit-intern budget still has room, returning
/// its id; `None` once `budget` has reached `capacity` and the shape is
/// unknown (the caller serves it through the uncached pipeline).  Shared by
/// [`CachedLabeler::label_query`] and [`LabelerSnapshot::label_query`] so
/// the live labeler and its snapshots draw on one arena budget.
fn intern_within_budget(
    interner: &SharedQueryInterner,
    budget: &AtomicUsize,
    capacity: usize,
    query: &ConjunctiveQuery,
) -> Option<QueryId> {
    // The arena budget counts the shapes the implicit path has interned —
    // dissected parts, view definitions and explicitly interned pools do
    // not consume it (they are bounded by the shapes that carry them).
    // The unsynchronized load can overshoot by a few entries under
    // concurrent first sightings; the bound stays O(capacity).
    let guard = interner.read().unwrap_or_else(|e| e.into_inner());
    match guard.lookup(query) {
        Some(id) => Some(id),
        None if budget.load(Ordering::Relaxed) >= capacity => None,
        None => {
            drop(guard);
            budget.fetch_add(1, Ordering::Relaxed);
            Some(
                interner
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .intern(query),
            )
        }
    }
}

impl QueryLabeler for BitVectorLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mask = self.atom_mask(&atom_query);
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

// ---------------------------------------------------------------------------
// Cached: canonical-form memoization of the per-atom ℓ⁺ step.
// ---------------------------------------------------------------------------

/// Hit/miss/invalidation counters of a [`CachedLabeler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Whole-query labelings answered from the query-level cache.
    pub hits: u64,
    /// Whole-query labelings that ran the labeling pipeline.
    pub misses: u64,
    /// Number of distinct canonical query forms currently cached.
    pub entries: usize,
    /// Per-atom `ℓ⁺` computations answered from the atom-level cache
    /// (only query-level misses and stale refreshes reach it).
    pub atom_hits: u64,
    /// Per-atom `ℓ⁺` computations that ran the full per-view check.
    pub atom_misses: u64,
    /// Number of distinct canonical atom forms currently cached.
    pub atom_entries: usize,
    /// Query-cache entries refreshed in place because some atom's relation
    /// epoch had advanced — only the stale atoms were re-derived, folding
    /// and dissection were skipped.
    pub query_refreshes: u64,
    /// Atom-cache entries recomputed because their relation epoch had
    /// advanced.
    pub atom_refreshes: u64,
    /// View-universe invalidations applied to this labeler
    /// ([`CachedLabeler::add_view`] / [`CachedLabeler::invalidate_relation`]).
    pub invalidations: u64,
    /// Whole-query labelings answered by batch-level dedup: a duplicate of
    /// a query already labeled earlier in the *same batch* reused that
    /// label instead of re-entering the pipeline.  Every dedup hit is also
    /// counted in [`hits`](Self::hits), so the other counters match what a
    /// sequential run of the same batch would report.
    pub batch_dedup_hits: u64,
}

impl CacheStats {
    /// Query-level hit rate in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An atom-cache entry: the memoized `ℓ⁺` mask plus the epoch of the atom's
/// relation at computation time.  A lookup whose stored epoch trails the
/// registry's current epoch is stale and recomputes in place.
#[derive(Debug, Clone, Copy)]
struct AtomEntry {
    mask: ViewMask,
    epoch: u64,
}

/// One dissected part of a cached query entry.
///
/// The interned id of the single-atom query is retained so that an epoch
/// change can re-derive *just this atom's* mask: the expensive front of the
/// pipeline (folding and dissection, NP-hard in general) never re-runs for a
/// cached shape.  The relation, epoch and mask are stored per part — NOT
/// read back from the finished label — because [`DisclosureLabel::push`]
/// absorbs redundant atom labels, so the label's atoms are not 1:1 with the
/// dissected parts.
#[derive(Debug, Clone, Copy)]
struct QueryPart {
    /// Interned id of the dissected single-atom query.
    atom: QueryId,
    /// The atom's dense single-atom ordinal — the slot index of the
    /// per-atom cache, kept proportional to distinct atoms rather than the
    /// whole arena id space.
    ordinal: u32,
    relation: RelId,
    /// Epoch of the part's relation when its mask was computed.
    epoch: u64,
    /// The part's `ℓ⁺` mask at that epoch.
    mask: ViewMask,
}

/// A query-cache entry: the finished label plus the dissected parts it was
/// folded from.
#[derive(Debug, Clone)]
struct QueryEntry {
    label: DisclosureLabel,
    parts: Vec<QueryPart>,
}

/// Number of independent locks the query-level slot cache is striped over.
/// Query `id` lives in shard `id % QUERY_CACHE_SHARDS` at slot
/// `id / QUERY_CACHE_SHARDS`, so consecutive ids (the common case for a
/// workload interned in arrival order) spread across all stripes.
const QUERY_CACHE_SHARDS: usize = 16;

/// One stripe of the query-level cache: a plain slot vector indexed by
/// `QueryId / QUERY_CACHE_SHARDS`.  Dense ids make a `Vec` strictly better
/// than a hash map here: no hashing, no probing, and the lock is held for a
/// bounds check plus an index.
#[derive(Debug, Clone, Default)]
struct QueryCacheShard {
    slots: Vec<Option<QueryEntry>>,
}

/// The striped cache tables of a [`CachedLabeler`]: the query-level slot
/// stripes, the ordinal-indexed atom table, and the occupancy / arena-budget
/// gauges.
///
/// The tables live behind an `Arc` so a [`LabelerSnapshot`] can hold a
/// **read-only** handle onto the live labeler's warm state while serving
/// against a frozen epoch vector: the snapshot never writes here (its own
/// computations land in a private overlay) until it is retired through
/// [`CachedLabeler::retire_snapshot`], which publishes the overlay back so
/// warm state survives epochs.
#[derive(Debug)]
struct LabelTables {
    query_shards: Vec<RwLock<QueryCacheShard>>,
    /// Occupied query slots across all stripes (capacity accounting).
    query_entries: AtomicUsize,
    /// Per-atom `ℓ⁺` table, indexed by the interner's dense single-atom
    /// ordinal (so its footprint tracks distinct atoms, not arena ids).
    atom_cache: RwLock<Vec<Option<AtomEntry>>>,
    /// Occupied atom slots (capacity accounting).
    atom_entries: AtomicUsize,
    /// Shapes interned by the implicit `label_query` path — the arena
    /// budget (explicit `intern` calls are exempt, as are the dissected
    /// parts and view definitions that ride along with admitted shapes).
    implicit_interns: AtomicUsize,
}

impl LabelTables {
    fn new() -> Self {
        LabelTables {
            query_shards: (0..QUERY_CACHE_SHARDS)
                .map(|_| RwLock::new(QueryCacheShard::default()))
                .collect(),
            query_entries: AtomicUsize::new(0),
            atom_cache: RwLock::new(Vec::new()),
            atom_entries: AtomicUsize::new(0),
            implicit_interns: AtomicUsize::new(0),
        }
    }

    fn read_shard(&self, shard: usize) -> std::sync::RwLockReadGuard<'_, QueryCacheShard> {
        self.query_shards[shard]
            .read()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn write_shard(&self, shard: usize) -> std::sync::RwLockWriteGuard<'_, QueryCacheShard> {
        self.query_shards[shard]
            .write()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn read_atoms(&self) -> std::sync::RwLockReadGuard<'_, Vec<Option<AtomEntry>>> {
        self.atom_cache.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts (or refreshes) a query-cache entry, growing the stripe's slot
    /// vector only when actually admitting, and keeping the occupancy gauge
    /// exact (incremented only when an empty slot fills — under the stripe's
    /// write lock, so no double counting).
    fn store_query(&self, shard_idx: usize, slot: usize, entry: QueryEntry) {
        self.store_query_counted(shard_idx, slot, entry, true);
    }

    /// [`store_query`](Self::store_query) with explicit gauge control:
    /// `count_new: false` fills the slot without charging the occupancy
    /// gauge — used by snapshot overlays storing a *refresh* of an entry
    /// that still occupies the same slot in the shared base table (the
    /// distinct-slot count across base + overlay is unchanged, so charging
    /// it would double-count against the capacity).
    fn store_query_counted(
        &self,
        shard_idx: usize,
        slot: usize,
        entry: QueryEntry,
        count_new: bool,
    ) {
        let mut shard = self.write_shard(shard_idx);
        if slot >= shard.slots.len() {
            shard.slots.resize_with(slot + 1, || None);
        }
        if count_new && shard.slots[slot].is_none() {
            self.query_entries.fetch_add(1, Ordering::Relaxed);
        }
        shard.slots[slot] = Some(entry);
    }

    /// The cached atom entry at `slot`, if any.  `slot` is a dense
    /// single-atom ordinal that may have been minted *after* the table was
    /// last grown — out-of-range reads are an ordinary miss, never a panic.
    fn get_atom(&self, slot: usize) -> Option<AtomEntry> {
        self.read_atoms().get(slot).copied().flatten()
    }

    /// Inserts (or refreshes) an atom-cache entry, growing the table to
    /// cover the ordinal.  Growth happens under the write lock and is
    /// re-checked there: an ordinal minted after the table was sized (the
    /// interner grows between `dissect_interned` and the cache write) simply
    /// extends the table — it can neither index out of bounds nor be
    /// silently dropped.
    fn store_atom(&self, slot: usize, entry: AtomEntry) {
        self.store_atom_counted(slot, entry, true);
    }

    /// [`store_atom`](Self::store_atom) with explicit gauge control — see
    /// [`store_query_counted`](Self::store_query_counted).
    fn store_atom_counted(&self, slot: usize, entry: AtomEntry, count_new: bool) {
        let mut cache = self.atom_cache.write().unwrap_or_else(|e| e.into_inner());
        if slot >= cache.len() {
            cache.resize_with(slot + 1, || None);
        }
        if count_new && cache[slot].is_none() {
            self.atom_entries.fetch_add(1, Ordering::Relaxed);
        }
        cache[slot] = Some(entry);
    }

    /// Drops every cached entry (gauges included); counters owned by the
    /// labelers are untouched.
    fn clear(&self) {
        for shard in 0..QUERY_CACHE_SHARDS {
            self.write_shard(shard).slots.clear();
        }
        self.query_entries.store(0, Ordering::Relaxed);
        self.atom_cache
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.atom_entries.store(0, Ordering::Relaxed);
    }
}

/// A labeler that memoizes labeling by **interned query id**, at two levels.
///
/// A disclosure label depends only on the query's structure up to variable
/// renaming — the atoms, the constants, the variable-equality pattern and
/// the distinguished/existential tags.  The [`QueryInterner`] canonicalizes
/// exactly that, so `QueryId` equality *is* canonical-form equality and the
/// **query-level** cache becomes a sharded slot vector
/// indexed by id: a hit is a lock-striped `Vec` index straight to a finished
/// [`DisclosureLabel`], skipping the whole pipeline including the NP-hard
/// folding step of `Dissect`.  (This replaces the seed's single
/// `RwLock<HashMap<QueryKey, _>>`, whose every lookup allocated one key
/// vector per atom and serialized on one lock.)  Query-level misses run the
/// pipeline with a second, **atom-level** cache — a plain indexed table over
/// the ids [`dissect_interned`] emits — memoizing the per-atom `ℓ⁺` masks
/// that recur across distinct query shapes (e.g. the `Friend` join atoms the
/// Section 7.2 workload attaches to every friends-audience query).
///
/// Queries arriving as boxed [`ConjunctiveQuery`]s are interned on first
/// sight ([`intern`](Self::intern) / [`label_query`](QueryLabeler::label_query));
/// callers holding pre-interned ids — the `DisclosureService` admission
/// loop, the benchmark workloads — skip even that and call
/// [`label_interned`](Self::label_interned) /
/// [`label_queries_interned`](Self::label_queries_interned) directly.
///
/// Atom-level misses are filled by the interned per-view check (projection
/// bit tests with the interned rewriting fallback), which computes exactly
/// what [`BitVectorLabeler`] computes; the labeler never produces a
/// different label than the paper's three Figure 5 variants (asserted by
/// the property tests).
///
/// Both caches are internally synchronized: labeling takes `&self`, so one
/// `CachedLabeler` can be shared across worker threads — see
/// [`label_queries_parallel`] for the batch entry point.
///
/// Memory is bounded: each cache stops admitting new entries once it holds
/// [`capacity_limit`](Self::capacity_limit) canonical forms (lookups and
/// the computed results are unaffected — over-limit shapes are simply
/// recomputed), so a high-cardinality or adversarial stream of
/// never-repeating shapes cannot grow the tables without bound.  The
/// interner is bounded by the same limit on the implicit path: once
/// [`label_query`](QueryLabeler::label_query) has interned `capacity_limit`
/// distinct shapes, it stops interning unknown ones and falls back to the
/// uncached [`BitVectorLabeler`] pipeline (identical labels, counted as
/// misses).
/// Explicit [`intern`](Self::intern) calls are exempt — a caller asking for
/// an id is sizing its own pool and gets one unconditionally (dissected
/// atom parts of admitted shapes ride along the same exemption).
///
/// The labeler is **epoch-aware**: every cached mask and label records the
/// per-relation epoch of the [`SecurityViews`] registry it was computed
/// under.  When the view universe of relation `R` changes — an online
/// [`add_view`](Self::add_view) or an explicit
/// [`invalidate_relation`](Self::invalidate_relation) — only `R`'s epoch
/// advances; cached entries touching `R` become lazily stale and re-derive
/// exactly the stale atoms on their next lookup, while entries over other
/// relations keep hitting.  This is what lets a long-running service absorb
/// policy/view churn without flushing (and re-warming) the whole cache.
#[derive(Debug)]
pub struct CachedLabeler {
    inner: BitVectorLabeler,
    /// The query interner — the id authority every cache below is keyed by.
    /// Shared (`Arc`) so the service front door and workload generators can
    /// intern into the same id space; see [`SharedQueryInterner`].
    interner: SharedQueryInterner,
    /// Interned definition of every registered security view, indexed by
    /// [`SecurityViewId`] — the right-hand operand of the interned
    /// rewriting fallback.  Mutated only under `&mut self` (`add_view`).
    view_qids: Vec<QueryId>,
    /// The striped query/atom cache tables, `Arc`-shared so that
    /// [`snapshot`](Self::snapshot)s can keep answering warmed shapes while
    /// the live labeler moves on to newer epochs.
    tables: Arc<LabelTables>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    atom_hits: AtomicU64,
    atom_misses: AtomicU64,
    query_refreshes: AtomicU64,
    atom_refreshes: AtomicU64,
    invalidations: AtomicU64,
    batch_dedup_hits: AtomicU64,
}

/// Default per-cache entry limit of a [`CachedLabeler`].
///
/// Entries are a canonical key plus a small label (tens to a few hundred
/// bytes each), so the default bounds each table to the low hundreds of
/// megabytes in the worst case while comfortably holding every shape a
/// realistic workload produces.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

impl Clone for CachedLabeler {
    /// Cloning snapshots the cached entries and resets the counters.  The
    /// interner handle is **shared**, not copied — it only grows, so ids
    /// stay aligned between the original and the clone (which is what lets
    /// a snapshot keep answering warmed shapes).
    ///
    /// The snapshot is **consistent**: every query stripe's read lock and
    /// the atom table's read lock are held simultaneously while copying, so
    /// a clone taken while other threads label through the original can
    /// never capture one stripe before a concurrent insertion and another
    /// after it with a drifted occupancy gauge — the clone's `entries` /
    /// `atom_entries` gauges are recomputed from the copied slots, not
    /// copied from the racing atomics.  (Epoch bumps require `&mut self`
    /// and therefore cannot overlap a clone at all; concurrently inserted
    /// entries carry honest epoch tags either way, so a stale-tagged entry
    /// is always re-derived on lookup, never served — asserted by
    /// `concurrent_clones_are_internally_consistent`.)
    fn clone(&self) -> Self {
        // Take every stripe lock first (in index order, matching no writer
        // that ever holds two), then the atom lock: one consistent cut.
        let stripe_guards: Vec<_> = (0..QUERY_CACHE_SHARDS)
            .map(|shard| self.tables.read_shard(shard))
            .collect();
        let atom_guard = self.tables.read_atoms();
        let tables = LabelTables::new();
        let mut query_entries = 0usize;
        for (shard, guard) in stripe_guards.iter().enumerate() {
            query_entries += guard.slots.iter().filter(|slot| slot.is_some()).count();
            *tables.query_shards[shard]
                .write()
                .unwrap_or_else(|e| e.into_inner()) = (**guard).clone();
        }
        tables.query_entries.store(query_entries, Ordering::Relaxed);
        let atom_entries = atom_guard.iter().filter(|slot| slot.is_some()).count();
        *tables.atom_cache.write().unwrap_or_else(|e| e.into_inner()) = atom_guard.clone();
        tables.atom_entries.store(atom_entries, Ordering::Relaxed);
        tables.implicit_interns.store(
            self.tables.implicit_interns.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        drop(atom_guard);
        drop(stripe_guards);
        CachedLabeler {
            inner: self.inner.clone(),
            interner: Arc::clone(&self.interner),
            view_qids: self.view_qids.clone(),
            tables: Arc::new(tables),
            capacity: self.capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            atom_hits: AtomicU64::new(0),
            atom_misses: AtomicU64::new(0),
            query_refreshes: AtomicU64::new(0),
            atom_refreshes: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            batch_dedup_hits: AtomicU64::new(0),
        }
    }
}

impl CachedLabeler {
    /// Builds a caching labeler over a view registry with the
    /// [default capacity limit](DEFAULT_CACHE_CAPACITY).
    pub fn new(views: SecurityViews) -> Self {
        Self::with_capacity_limit(views, DEFAULT_CACHE_CAPACITY)
    }

    /// Builds a caching labeler whose query- and atom-level caches each
    /// admit at most `capacity` entries (at least 1).
    ///
    /// Every registered security view is interned up front, so the interned
    /// rewriting fallback never has to intern mid-labeling.
    pub fn with_capacity_limit(views: SecurityViews, capacity: usize) -> Self {
        let mut interner = QueryInterner::new();
        let mut view_qids = Vec::with_capacity(views.len());
        for (id, view) in views.iter() {
            debug_assert_eq!(id.index(), view_qids.len(), "view ids are dense");
            view_qids.push(interner.intern(&view.query));
        }
        CachedLabeler {
            inner: BitVectorLabeler::new(views),
            interner: Arc::new(RwLock::new(interner)),
            view_qids,
            tables: Arc::new(LabelTables::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            atom_hits: AtomicU64::new(0),
            atom_misses: AtomicU64::new(0),
            query_refreshes: AtomicU64::new(0),
            atom_refreshes: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            batch_dedup_hits: AtomicU64::new(0),
        }
    }

    /// Builds a caching labeler over a view registry with a
    /// **pre-populated** interner — the recovery constructor.
    ///
    /// Where [`with_capacity_limit`](Self::with_capacity_limit) starts
    /// from an empty interner and interns the view queries as ids
    /// `0, 1, …`, this takes an interner restored from a checkpoint
    /// (`QueryInterner::decode_from`) that already holds those shapes:
    /// interning a view query again finds its existing id, so every
    /// `QueryId` minted before the checkpoint stays valid — the property
    /// that makes interned admissions replayable across restarts.
    pub fn with_interner(
        views: SecurityViews,
        mut interner: QueryInterner,
        capacity: usize,
    ) -> Self {
        let mut view_qids = Vec::with_capacity(views.len());
        for (id, view) in views.iter() {
            debug_assert_eq!(id.index(), view_qids.len(), "view ids are dense");
            view_qids.push(interner.intern(&view.query));
        }
        CachedLabeler {
            inner: BitVectorLabeler::new(views),
            interner: Arc::new(RwLock::new(interner)),
            view_qids,
            tables: Arc::new(LabelTables::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            atom_hits: AtomicU64::new(0),
            atom_misses: AtomicU64::new(0),
            query_refreshes: AtomicU64::new(0),
            atom_refreshes: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            batch_dedup_hits: AtomicU64::new(0),
        }
    }

    /// The per-cache entry limit.
    pub fn capacity_limit(&self) -> usize {
        self.capacity
    }

    /// The shared query-interner handle.
    ///
    /// Clone the handle to intern workload pools into this labeler's id
    /// space (see `fdc_ecosystem::ChurnGenerator::attach_interner`), or
    /// lock it read-only to resolve ids back to queries.
    pub fn interner(&self) -> SharedQueryInterner {
        Arc::clone(&self.interner)
    }

    /// Interns a query into this labeler's id space, returning its dense
    /// [`QueryId`].
    ///
    /// Already-interned shapes (including alpha-variants) take only the
    /// interner's read lock; genuinely new shapes take the write lock once.
    ///
    /// Explicit interning is exempt from the
    /// [`capacity_limit`](Self::capacity_limit) arena budget that bounds
    /// the implicit [`label_query`](QueryLabeler::label_query) path: a
    /// caller asking for an id is sizing its own pool and gets one
    /// unconditionally.
    pub fn intern(&self, query: &ConjunctiveQuery) -> QueryId {
        if let Some(id) = self.read_interner().lookup(query) {
            return id;
        }
        self.interner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .intern(query)
    }

    fn read_interner(&self) -> std::sync::RwLockReadGuard<'_, QueryInterner> {
        self.interner.read().unwrap_or_else(|e| e.into_inner())
    }

    #[inline]
    fn shard_and_slot(id: QueryId) -> (usize, usize) {
        (
            id.index() % QUERY_CACHE_SHARDS,
            id.index() / QUERY_CACHE_SHARDS,
        )
    }

    fn read_query_shard(&self, shard: usize) -> std::sync::RwLockReadGuard<'_, QueryCacheShard> {
        self.tables.read_shard(shard)
    }

    /// The current epoch of a relation's view universe (delegated to the
    /// owned registry).  Epochs only change under `&mut self`, so they are
    /// stable for the duration of any `&self` labeling call.
    #[inline]
    fn epoch_of(&self, relation: RelId) -> u64 {
        self.inner.views.epoch(relation)
    }

    /// `ℓ⁺` of one dissected single-atom query (by interned id), through the
    /// epoch-checked indexed atom table.  `ordinal` is the atom's dense
    /// single-atom ordinal — the table's slot index.
    ///
    /// The ordinal may lie past the table's current length (the interner
    /// mints ordinals faster than the table grows when distinct atoms keep
    /// arriving): the read treats out-of-range slots as a plain miss and the
    /// write path ([`LabelTables::store_atom`]) extends the table under the
    /// write lock, so a mid-batch interner growth between `dissect_interned`
    /// and the cache write can neither index out of bounds nor lose the
    /// entry — asserted by `atom_ordinals_minted_mid_batch_grow_the_table`.
    fn cached_atom_mask(&self, atom: QueryId, ordinal: u32, relation: RelId) -> ViewMask {
        let current = self.epoch_of(relation);
        let slot = ordinal as usize;
        let mut stale = false;
        if let Some(entry) = self.tables.get_atom(slot) {
            if entry.epoch == current {
                self.atom_hits.fetch_add(1, Ordering::Relaxed);
                return entry.mask;
            }
            stale = true;
        }
        let mask = {
            let interner = self.read_interner();
            interned_atom_mask(&self.inner, &self.view_qids, &interner, atom, relation)
        };
        let counter = if stale {
            &self.atom_refreshes
        } else {
            &self.atom_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        // Refreshing an existing slot never grows the table, so stale
        // entries are always re-admitted; brand-new atoms respect the
        // capacity (the slot vector only grows for admitted entries).
        if stale || self.tables.atom_entries.load(Ordering::Relaxed) < self.capacity {
            self.tables.store_atom(
                slot,
                AtomEntry {
                    mask,
                    epoch: current,
                },
            );
        }
        mask
    }

    /// Registers one more security view online.
    ///
    /// Only the view's relation is invalidated (its epoch advances inside
    /// the registry): cached labels and masks for every other relation keep
    /// hitting, and entries touching the relation lazily re-derive just
    /// their stale atoms.  This is the incremental-relabeling path a
    /// dynamic service uses for `AddSecurityView` operations.
    pub fn add_view(&mut self, name: &str, query: ConjunctiveQuery) -> Result<SecurityViewId> {
        let view_qid = self
            .interner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .intern(&query);
        let id = self.inner.add_view(name, query)?;
        debug_assert_eq!(id.index(), self.view_qids.len(), "view ids are dense");
        self.view_qids.push(view_qid);
        *self.invalidations.get_mut() += 1;
        Ok(id)
    }

    /// Marks every cached label and mask derived for atoms over `relation`
    /// as stale by advancing the relation's epoch.
    ///
    /// Stale entries are not dropped: they re-derive lazily (and only their
    /// stale atoms) on next lookup.  Use this when a view definition changed
    /// out of band; [`add_view`](Self::add_view) invalidates automatically.
    pub fn invalidate_relation(&mut self, relation: RelId) {
        self.inner.views.bump_epoch(relation);
        *self.invalidations.get_mut() += 1;
    }

    /// Current hit/miss/invalidation counters and cache sizes.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.tables.query_entries.load(Ordering::Relaxed),
            atom_hits: self.atom_hits.load(Ordering::Relaxed),
            atom_misses: self.atom_misses.load(Ordering::Relaxed),
            atom_entries: self.tables.atom_entries.load(Ordering::Relaxed),
            query_refreshes: self.query_refreshes.load(Ordering::Relaxed),
            atom_refreshes: self.atom_refreshes.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            batch_dedup_hits: self.batch_dedup_hits.load(Ordering::Relaxed),
        }
    }

    /// Drops every cached entry while keeping the hit/miss/refresh
    /// counters — the flush-on-mutation strategy the epoch machinery
    /// exists to avoid, kept as the Figure 7 baseline
    /// (`InvalidationMode::FlushOnMutation` in `fdc-service`).  Keeping
    /// the counters cumulative is what makes the baseline's cost visible:
    /// every post-flush relabeling still counts as a miss.
    pub fn clear_entries(&self) {
        self.tables.clear();
    }

    /// Drops every cached entry **and** resets the counters (e.g. to
    /// isolate a fresh measurement window); see
    /// [`clear_entries`](Self::clear_entries) to flush without losing the
    /// cumulative statistics.
    pub fn clear(&self) {
        self.clear_entries();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.atom_hits.store(0, Ordering::Relaxed);
        self.atom_misses.store(0, Ordering::Relaxed);
        self.query_refreshes.store(0, Ordering::Relaxed);
        self.atom_refreshes.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.batch_dedup_hits.store(0, Ordering::Relaxed);
    }

    /// Labels a batch in parallel and folds the results into the cumulative
    /// disclosure label, using the process-wide [`WorkerPool`].
    ///
    /// Equivalent to [`QueryLabeler::label_queries`] (asserted by the test
    /// suite — the label lattice LUB is idempotent, so deduplicating
    /// repeats cannot change the fold).  Batches of at least
    /// [`POOLED_BATCH_THRESHOLD`] queries on a multi-core host are handed
    /// to the persistent workers as queue pushes (no thread spawns): the
    /// batch labels through a one-off [`LabelerSnapshot`] whose cache work
    /// — entries, counters, capacity charges — is drained back into this
    /// labeler when the batch completes, so the pooled path warms the
    /// cache exactly like the sequential one.  Smaller batches (and
    /// single-core hosts) label sequentially on the calling thread with
    /// batch-level dedup on canonical identity
    /// ([`label_queries_deduped`](Self::label_queries_deduped)).
    pub fn label_queries_batch(&self, queries: &[ConjunctiveQuery]) -> DisclosureLabel {
        // Length check first: small batches must not spin up the global
        // pool just to decide they don't need it.
        if queries.len() < POOLED_BATCH_THRESHOLD {
            return self.label_queries_deduped(queries);
        }
        let pool = WorkerPool::global();
        if pool.workers() <= 1 {
            return self.label_queries_deduped(queries);
        }
        let partials = self.pooled_batch(pool, queries, |snapshot, lane, chunk| {
            snapshot.label_queries_in(lane, &chunk)
        });
        let mut out = DisclosureLabel::bottom();
        for partial in &partials {
            out.combine_in_place(partial);
        }
        out
    }

    /// Labels a boxed batch sequentially with **batch-level dedup keyed on
    /// canonical identity**: each query is interned once (alpha-variants
    /// collapse to one [`QueryId`]) and every later duplicate in the batch
    /// reuses the label computed for its first occurrence — credited as a
    /// [`hit`](CacheStats::hits) plus a
    /// [`batch_dedup_hit`](CacheStats::batch_dedup_hits), never re-entering
    /// the labeling pipeline.  Queries past the implicit-intern arena
    /// budget have no cheap identity and label through the uncached
    /// pipeline, exactly like [`label_query`](QueryLabeler::label_query).
    ///
    /// The fold equals the plain [`QueryLabeler::label_queries`] result
    /// because the label lattice LUB is idempotent; the equivalence suite
    /// asserts it.
    pub fn label_queries_deduped(&self, queries: &[ConjunctiveQuery]) -> DisclosureLabel {
        let mut out = DisclosureLabel::bottom();
        let mut seen: HashMap<QueryId, DisclosureLabel> = HashMap::new();
        for query in queries {
            match intern_within_budget(
                &self.interner,
                &self.tables.implicit_interns,
                self.capacity,
                query,
            ) {
                Some(id) => {
                    if let Some(label) = seen.get(&id) {
                        out.combine_in_place(label);
                        self.note_batch_dedup_hit();
                    } else {
                        let label = self.label_interned(id);
                        out.combine_in_place(&label);
                        seen.insert(id, label);
                    }
                }
                None => {
                    // Arena budget exhausted: serve without interning.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    out.combine_in_place(&self.inner.label_query(query));
                }
            }
        }
        out
    }

    /// The canonical interned identity of `query` **if its shape is already
    /// known** — a read-locked lookup that never interns and never charges
    /// the arena budget.  The service's batch staging uses this to key its
    /// dedup map for plain (un-interned) admissions; `None` simply means
    /// "no cheap identity, don't dedup this one".
    pub fn batch_identity(&self, query: &ConjunctiveQuery) -> Option<QueryId> {
        self.read_interner().lookup(query)
    }

    /// Credits one batch-level dedup hit: the caller answered a duplicate
    /// query in a batch by fanning out a label computed earlier in that
    /// same batch.  Counted as a regular cache hit *as well*, so every
    /// other [`CacheStats`] column matches what labeling the duplicate
    /// would have reported.
    pub fn note_batch_dedup_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.batch_dedup_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Labels each query of a batch in parallel, preserving order.
    ///
    /// The per-query counterpart of
    /// [`label_queries_batch`](Self::label_queries_batch) for callers that
    /// need individual labels (e.g. to feed a policy store); same pooled
    /// execution, same sequential fallback.
    pub fn label_batch(&self, queries: &[ConjunctiveQuery]) -> Vec<DisclosureLabel> {
        if queries.len() < POOLED_BATCH_THRESHOLD {
            return queries.iter().map(|q| self.label_query(q)).collect();
        }
        let pool = WorkerPool::global();
        if pool.workers() <= 1 {
            return queries.iter().map(|q| self.label_query(q)).collect();
        }
        self.pooled_batch(pool, queries, |snapshot, lane, chunk| {
            chunk
                .iter()
                .map(|q| snapshot.label_query_in(lane, q))
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Runs one batch on the worker pool: chunks the queries, labels every
    /// chunk through a shared one-off [`LabelerSnapshot`] pinned to a fresh
    /// pool epoch — each task writing its private overlay lane — and
    /// retires the snapshot once the batch completes, publishing its cache
    /// work (entries, counters, capacity charges) back into this labeler.
    /// Returns the per-chunk results in chunk order.
    fn pooled_batch<R, F>(
        &self,
        pool: &WorkerPool,
        queries: &[ConjunctiveQuery],
        label_chunk: F,
    ) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(&LabelerSnapshot, usize, Vec<ConjunctiveQuery>) -> R + Send + Sync + 'static,
    {
        let snapshot = Arc::new(self.snapshot_with_lanes(pool.workers() + 1));
        let epoch = pool.advance_epoch();
        // More chunks than workers so a skewed chunk can be stolen around.
        let chunk_len = queries
            .len()
            .div_ceil(pool.workers() * POOLED_CHUNKS_PER_WORKER)
            .max(1);
        let inputs: Vec<Vec<ConjunctiveQuery>> =
            queries.chunks(chunk_len).map(<[_]>::to_vec).collect();
        let shared = Arc::clone(&snapshot);
        let results = pool.run(inputs, move |chunk, ctx| {
            let _pin = ctx.pin(epoch);
            label_chunk(&shared, shared.lane_for(ctx), chunk)
        });
        // `run` returned, so every task (and its epoch pin and snapshot
        // handle) is gone: the snapshot's overlay can drain back.
        self.retire_snapshot(&snapshot);
        results
    }

    /// Labels one query and returns the packed 64-bit representation
    /// (Section 6.1) — the form the policy stores consume directly via
    /// `submit_packed`, so a cache hit plus a pack is the whole labeling
    /// stage of the admission path.
    pub fn label_packed(&self, query: &ConjunctiveQuery) -> Vec<PackedLabel> {
        self.label_query(query).pack()
    }

    /// Labels each query of a batch in parallel, preserving order, and
    /// returns the packed representation of every label.
    ///
    /// The packed counterpart of [`label_batch`](Self::label_batch) for
    /// callers that feed a policy store: the labels never leave the 64-bit
    /// form between the labeling and enforcement stages.
    pub fn label_batch_packed(&self, queries: &[ConjunctiveQuery]) -> Vec<Vec<PackedLabel>> {
        if queries.len() < POOLED_BATCH_THRESHOLD {
            return queries.iter().map(|q| self.label_packed(q)).collect();
        }
        let pool = WorkerPool::global();
        if pool.workers() <= 1 {
            return queries.iter().map(|q| self.label_packed(q)).collect();
        }
        self.pooled_batch(pool, queries, |snapshot, lane, chunk| {
            chunk
                .iter()
                .map(|q| snapshot.label_query_in(lane, q).pack())
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Labels an already-interned query — the hot path for callers that
    /// hold dense [`QueryId`]s (the service's admission loop, pre-interned
    /// workload pools).
    ///
    /// A warm lookup is a lock-striped `Vec` index: no canonical hashing, no
    /// key allocation.  Misses run the interned pipeline
    /// ([`dissect_interned`] + the indexed atom table); stale entries
    /// re-derive just their stale atoms, exactly like the boxed path.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this labeler's
    /// [`interner`](Self::interner).
    pub fn label_interned(&self, id: QueryId) -> DisclosureLabel {
        let (shard_idx, slot) = Self::shard_and_slot(id);
        let lookup = {
            let shard = self.read_query_shard(shard_idx);
            match shard.slots.get(slot).and_then(Option::as_ref) {
                Some(entry) => {
                    let fresh = entry
                        .parts
                        .iter()
                        .all(|part| part.epoch == self.epoch_of(part.relation));
                    if fresh {
                        QueryLookup::Fresh(entry.label.clone())
                    } else {
                        QueryLookup::Stale(entry.clone())
                    }
                }
                None => QueryLookup::Absent,
            }
        };
        match lookup {
            QueryLookup::Fresh(label) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                label
            }
            QueryLookup::Stale(entry) => {
                // Re-derive only the parts whose relation epoch advanced;
                // fresh parts keep their masks, and folding/dissection are
                // skipped entirely (the dissected part ids are stored).
                let mut label = DisclosureLabel::bottom();
                let mut parts = Vec::with_capacity(entry.parts.len());
                for part in entry.parts {
                    let current = self.epoch_of(part.relation);
                    let mask = if part.epoch == current {
                        part.mask
                    } else {
                        self.cached_atom_mask(part.atom, part.ordinal, part.relation)
                    };
                    label.push(AtomLabel::new(part.relation, mask));
                    parts.push(QueryPart {
                        atom: part.atom,
                        ordinal: part.ordinal,
                        relation: part.relation,
                        epoch: current,
                        mask,
                    });
                }
                self.query_refreshes.fetch_add(1, Ordering::Relaxed);
                let entry = QueryEntry {
                    label: label.clone(),
                    parts,
                };
                self.store_entry(shard_idx, slot, entry);
                label
            }
            QueryLookup::Absent => {
                let part_ids = dissect_part_ids(&self.interner, id);
                let mut label = DisclosureLabel::bottom();
                let mut parts = Vec::with_capacity(part_ids.len());
                for (atom, ordinal, relation) in part_ids {
                    let mask = self.cached_atom_mask(atom, ordinal, relation);
                    label.push(AtomLabel::new(relation, mask));
                    parts.push(QueryPart {
                        atom,
                        ordinal,
                        relation,
                        epoch: self.epoch_of(relation),
                        mask,
                    });
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                if self.tables.query_entries.load(Ordering::Relaxed) < self.capacity {
                    let entry = QueryEntry {
                        label: label.clone(),
                        parts,
                    };
                    self.store_entry(shard_idx, slot, entry);
                }
                label
            }
        }
    }

    /// Inserts (or refreshes) a query-cache entry, growing the shard's slot
    /// vector only when actually admitting.
    fn store_entry(&self, shard_idx: usize, slot: usize, entry: QueryEntry) {
        self.tables.store_query(shard_idx, slot, entry);
    }

    /// Folds a pre-interned batch into the cumulative disclosure label of
    /// answering every query — the interned counterpart of
    /// [`label_queries`](QueryLabeler::label_queries), and the series the
    /// Figure 5 benchmark reports as `interned`.
    ///
    /// Fresh hits combine straight out of the cache under the shard's read
    /// lock, so the steady state does one `Vec` index and one in-place
    /// lattice fold per query — no hashing, no label clone.
    ///
    /// Within one batch each distinct id runs the labeling pipeline at most
    /// once: a repeated id that cannot be served from the cache (e.g. the
    /// cache is at capacity and its first occurrence was not admitted)
    /// reuses the label computed earlier in the batch and is credited as a
    /// [`hit`](CacheStats::hits) plus a
    /// [`batch_dedup_hit`](CacheStats::batch_dedup_hits).  Warm batches
    /// never touch the dedup list, so the steady state is unchanged.
    pub fn label_queries_interned(&self, ids: &[QueryId]) -> DisclosureLabel {
        let mut out = DisclosureLabel::bottom();
        // Ids that missed the cache earlier in this batch, with the label
        // each resolved to.  Kept as a linear list: it only ever holds
        // cold-path ids, and a batch's distinct cold ids are few.
        let mut missed: Vec<(QueryId, DisclosureLabel)> = Vec::new();
        for &id in ids {
            if self.combine_fresh_hit(id, &mut out) {
                continue;
            }
            if let Some((_, label)) = missed.iter().find(|(seen, _)| *seen == id) {
                out.combine_in_place(label);
                self.note_batch_dedup_hit();
                continue;
            }
            let label = self.label_interned(id);
            out.combine_in_place(&label);
            missed.push((id, label));
        }
        out
    }

    /// Labels each pre-interned query of a batch, preserving order — the
    /// interned counterpart of [`label_batch`](Self::label_batch).
    pub fn label_batch_interned(&self, ids: &[QueryId]) -> Vec<DisclosureLabel> {
        ids.iter().map(|&id| self.label_interned(id)).collect()
    }

    /// Labels one pre-interned query and returns the packed 64-bit
    /// representation — the form the policy stores consume directly.
    pub fn label_packed_interned(&self, id: QueryId) -> Vec<PackedLabel> {
        self.label_interned(id).pack()
    }

    /// Combines a fresh cached entry for `id` into `out` without cloning the
    /// label; returns false on a miss or stale entry (the caller falls back
    /// to [`label_interned`](Self::label_interned)).
    fn combine_fresh_hit(&self, id: QueryId, out: &mut DisclosureLabel) -> bool {
        let (shard_idx, slot) = Self::shard_and_slot(id);
        let shard = self.read_query_shard(shard_idx);
        if let Some(entry) = shard.slots.get(slot).and_then(Option::as_ref) {
            let fresh = entry
                .parts
                .iter()
                .all(|part| part.epoch == self.epoch_of(part.relation));
            if fresh {
                out.combine_in_place(&entry.label);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Freezes this labeler into an immutable [`LabelerSnapshot`].
    ///
    /// The snapshot pins the view universe (registry, compiled candidate
    /// lists and per-relation epochs) **by value** and takes a read-only
    /// handle onto the live striped query/atom caches, so it keeps labeling
    /// at the frozen epoch vector — concurrently and without locks against
    /// the live labeler — while the live side absorbs further mutations.
    /// Everything the snapshot computes lands in a private overlay; hand it
    /// back through [`retire_snapshot`](Self::retire_snapshot) so the warm
    /// state survives the epoch.
    pub fn snapshot(&self) -> LabelerSnapshot {
        self.snapshot_with_lanes(1)
    }

    /// [`snapshot`](Self::snapshot) with `lanes` private overlay lanes —
    /// one per concurrent reader, so pool workers labeling sibling chunks
    /// of one snapshot never contend on a shared overlay's stripe locks.
    /// Lane 0 belongs to the coordinator (and any task running inline on
    /// the submitting thread); lanes `1..` map to pool workers through
    /// [`LabelerSnapshot::lane_for`].  All lanes drain back at
    /// [`retire_snapshot`](Self::retire_snapshot).
    pub fn snapshot_with_lanes(&self, lanes: usize) -> LabelerSnapshot {
        LabelerSnapshot {
            inner: self.inner.clone(),
            view_qids: self.view_qids.clone(),
            interner: Arc::clone(&self.interner),
            base: Arc::clone(&self.tables),
            overlays: (0..lanes.max(1)).map(|_| LabelTables::new()).collect(),
            capacity: self.capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            atom_hits: AtomicU64::new(0),
            atom_misses: AtomicU64::new(0),
            query_refreshes: AtomicU64::new(0),
            atom_refreshes: AtomicU64::new(0),
        }
    }

    /// Retires a [`snapshot`](Self::snapshot) of this labeler: drains every
    /// overlay lane — every entry the snapshot computed or refreshed while
    /// serving, on any worker — into the shared striped tables, and folds
    /// its hit/miss/refresh counters into this labeler's, so cache state
    /// *and* accounting survive the epoch handover.  Entries carry the
    /// epoch tags they were computed under; if the live registry has moved
    /// past them they are honestly stale and re-derive on next lookup.
    /// Two lanes that derived the same slot wrote identical entries (both
    /// read the same frozen base at the same frozen epochs), so the merge
    /// absorbs the duplicate — last store wins, content is equal.
    ///
    /// Retire snapshots in the order they were taken (the pipelined service
    /// executor does); anything the snapshot computes after retirement is
    /// discarded with it.
    ///
    /// # Panics
    ///
    /// Debug builds assert that the snapshot was taken from this labeler
    /// (the shared tables must be the same allocation).
    pub fn retire_snapshot(&self, snapshot: &LabelerSnapshot) {
        debug_assert!(
            Arc::ptr_eq(&self.tables, &snapshot.base),
            "a snapshot must be retired into the labeler it was taken from"
        );
        for overlay in &snapshot.overlays {
            for shard_idx in 0..QUERY_CACHE_SHARDS {
                let drained = std::mem::take(
                    &mut *overlay.query_shards[shard_idx]
                        .write()
                        .unwrap_or_else(|e| e.into_inner()),
                );
                for (slot, entry) in drained.slots.into_iter().enumerate() {
                    if let Some(entry) = entry {
                        self.tables.store_query(shard_idx, slot, entry);
                    }
                }
            }
            overlay.query_entries.store(0, Ordering::Relaxed);
            let drained_atoms = std::mem::take(
                &mut *overlay
                    .atom_cache
                    .write()
                    .unwrap_or_else(|e| e.into_inner()),
            );
            for (slot, entry) in drained_atoms.into_iter().enumerate() {
                if let Some(entry) = entry {
                    self.tables.store_atom(slot, entry);
                }
            }
            overlay.atom_entries.store(0, Ordering::Relaxed);
        }
        for (mine, theirs) in [
            (&self.hits, &snapshot.hits),
            (&self.misses, &snapshot.misses),
            (&self.atom_hits, &snapshot.atom_hits),
            (&self.atom_misses, &snapshot.atom_misses),
            (&self.query_refreshes, &snapshot.query_refreshes),
            (&self.atom_refreshes, &snapshot.atom_refreshes),
        ] {
            mine.fetch_add(theirs.swap(0, Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

/// An immutable, concurrently-servable view of a [`CachedLabeler`] at a
/// frozen per-relation epoch vector — the labeling half of the service
/// layer's `ServiceSnapshot` (see `fdc-service`).
///
/// A snapshot owns a copy of the view universe (registry, compiled
/// candidate lists, interned view definitions) exactly as it stood when
/// [`CachedLabeler::snapshot`] ran, shares the parent's [`QueryInterner`]
/// (ids stay aligned) and holds a **read-only** handle onto the parent's
/// striped query/atom cache tables: warm shapes keep hitting across the
/// handover.  Labels the snapshot computes or refreshes itself accumulate
/// in private overlay **lanes** — one per concurrent reader, selected via
/// [`lane_for`](Self::lane_for), each checked before the shared tables on
/// that reader's lookups — and flow back into the shared tables when the
/// snapshot is retired through [`CachedLabeler::retire_snapshot`].  A
/// pipelined executor can thus label a read run against the previous epoch
/// while the live labeler already serves the next one, with sibling pool
/// workers never contending on overlay stripe locks, and without losing
/// the run's cache work.
///
/// Every label a snapshot produces equals what a fresh [`BitVectorLabeler`]
/// over the frozen registry computes (property-tested); only *which epoch*
/// answers is pinned, never *what* the answer is.
#[derive(Debug)]
pub struct LabelerSnapshot {
    /// The frozen view universe: registry (with its epoch vector), compiled
    /// per-relation candidates.
    inner: BitVectorLabeler,
    /// Interned view definitions, frozen with the registry.
    view_qids: Vec<QueryId>,
    /// The parent's interner — shared, so ids issued on either side agree.
    interner: SharedQueryInterner,
    /// Read-only handle onto the parent's shared cache tables.
    base: Arc<LabelTables>,
    /// Entries this snapshot computed or refreshed, one private lane per
    /// concurrent reader (lane 0 = coordinator/inline); all lanes drain
    /// back into `base` at retirement.
    overlays: Vec<LabelTables>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    atom_hits: AtomicU64,
    atom_misses: AtomicU64,
    query_refreshes: AtomicU64,
    atom_refreshes: AtomicU64,
}

impl LabelerSnapshot {
    /// The frozen epoch of a relation's view universe.
    #[inline]
    fn epoch_of(&self, relation: RelId) -> u64 {
        self.inner.views.epoch(relation)
    }

    /// The frozen security-view registry (with the epoch vector the
    /// snapshot serves at).
    pub fn security_views(&self) -> &SecurityViews {
        &self.inner.views
    }

    /// The shared query-interner handle (see [`CachedLabeler::interner`]).
    pub fn interner(&self) -> SharedQueryInterner {
        Arc::clone(&self.interner)
    }

    /// True if `id` was issued by the shared interner — the validity check
    /// behind interned admissions.
    pub fn contains(&self, id: QueryId) -> bool {
        self.interner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .contains(id)
    }

    /// Counters accumulated by this snapshot since it was taken (or last
    /// retired); entry gauges report the private overlay lanes' **newly
    /// admitted** slots only (refreshes of slots still occupied in the
    /// shared base table are stored but not charged — the distinct-slot
    /// count across base and overlays is what the capacity bounds).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.overlay_gauge(|o| &o.query_entries),
            atom_hits: self.atom_hits.load(Ordering::Relaxed),
            atom_misses: self.atom_misses.load(Ordering::Relaxed),
            atom_entries: self.overlay_gauge(|o| &o.atom_entries),
            query_refreshes: self.query_refreshes.load(Ordering::Relaxed),
            atom_refreshes: self.atom_refreshes.load(Ordering::Relaxed),
            invalidations: 0,
            // Snapshots label chunk-by-chunk without batch context, so
            // they never dedup within a batch.
            batch_dedup_hits: 0,
        }
    }

    /// The number of private overlay lanes this snapshot was taken with.
    pub fn lanes(&self) -> usize {
        self.overlays.len()
    }

    /// The overlay lane a pool task should write through: lane 0 for the
    /// coordinator and inline tasks, lanes `1..` for pool workers (wrapped
    /// modulo the lane count, so a snapshot taken with fewer lanes than
    /// the pool has workers still works — wrapped lanes merely share a
    /// lane's stripe locks again).
    pub fn lane_for(&self, ctx: &WorkerContext<'_>) -> usize {
        match ctx.worker_index() {
            Some(index) if self.overlays.len() > 1 => 1 + index % (self.overlays.len() - 1),
            _ => 0,
        }
    }

    /// Sums one entry gauge across every overlay lane.
    fn overlay_gauge(&self, gauge: impl Fn(&LabelTables) -> &AtomicUsize) -> usize {
        self.overlays
            .iter()
            .map(|overlay| gauge(overlay).load(Ordering::Relaxed))
            .sum()
    }

    /// Looks `id` up in the reader's own overlay lane first, then the
    /// shared tables.  Sibling lanes are deliberately not consulted: a
    /// slot another worker derived concurrently re-derives here to the
    /// identical entry (same frozen base, same frozen epochs), and the
    /// retirement merge absorbs the duplicate.
    fn lookup(&self, lane: usize, shard_idx: usize, slot: usize) -> QueryLookup {
        for tables in [&self.overlays[lane], &*self.base] {
            let shard = tables.read_shard(shard_idx);
            if let Some(entry) = shard.slots.get(slot).and_then(Option::as_ref) {
                let fresh = entry
                    .parts
                    .iter()
                    .all(|part| part.epoch == self.epoch_of(part.relation));
                return if fresh {
                    QueryLookup::Fresh(entry.label.clone())
                } else {
                    QueryLookup::Stale(entry.clone())
                };
            }
        }
        QueryLookup::Absent
    }

    /// [`CachedLabeler::cached_atom_mask`] against the lane-over-shared
    /// tables, at the frozen epochs.
    fn cached_atom_mask(
        &self,
        lane: usize,
        atom: QueryId,
        ordinal: u32,
        relation: RelId,
    ) -> ViewMask {
        let current = self.epoch_of(relation);
        let slot = ordinal as usize;
        let mut stale = false;
        if let Some(entry) = self.overlays[lane]
            .get_atom(slot)
            .or_else(|| self.base.get_atom(slot))
        {
            if entry.epoch == current {
                self.atom_hits.fetch_add(1, Ordering::Relaxed);
                return entry.mask;
            }
            stale = true;
        }
        let mask = {
            let interner = self.interner.read().unwrap_or_else(|e| e.into_inner());
            interned_atom_mask(&self.inner, &self.view_qids, &interner, atom, relation)
        };
        let counter = if stale {
            &self.atom_refreshes
        } else {
            &self.atom_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        // Stale entries always re-admit without charging the gauge (their
        // slot is already occupied in the shared base table, so the
        // distinct-slot count is unchanged — overlay entries are never
        // stale within one snapshot, epochs are frozen); brand-new atoms
        // respect the capacity shared with the parent (base occupancy +
        // overlay-only additions across every lane).
        let occupied = self.base.atom_entries.load(Ordering::Relaxed)
            + self.overlay_gauge(|o| &o.atom_entries);
        if stale || occupied < self.capacity {
            self.overlays[lane].store_atom_counted(
                slot,
                AtomEntry {
                    mask,
                    epoch: current,
                },
                !stale,
            );
        }
        mask
    }

    /// Labels an already-interned query at the frozen epoch vector — the
    /// snapshot counterpart of [`CachedLabeler::label_interned`].  Writes
    /// through overlay lane 0 (the coordinator's lane); pool tasks use
    /// [`label_interned_in`](Self::label_interned_in) with their
    /// [`lane_for`](Self::lane_for) lane.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by the shared interner.
    pub fn label_interned(&self, id: QueryId) -> DisclosureLabel {
        self.label_interned_in(0, id)
    }

    /// [`label_interned`](Self::label_interned) through the given private
    /// overlay lane.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by the shared interner, or if `lane`
    /// is out of range for this snapshot's [`lanes`](Self::lanes).
    pub fn label_interned_in(&self, lane: usize, id: QueryId) -> DisclosureLabel {
        let (shard_idx, slot) = CachedLabeler::shard_and_slot(id);
        match self.lookup(lane, shard_idx, slot) {
            QueryLookup::Fresh(label) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                label
            }
            QueryLookup::Stale(entry) => {
                let mut label = DisclosureLabel::bottom();
                let mut parts = Vec::with_capacity(entry.parts.len());
                for part in entry.parts {
                    let current = self.epoch_of(part.relation);
                    let mask = if part.epoch == current {
                        part.mask
                    } else {
                        self.cached_atom_mask(lane, part.atom, part.ordinal, part.relation)
                    };
                    label.push(AtomLabel::new(part.relation, mask));
                    parts.push(QueryPart {
                        atom: part.atom,
                        ordinal: part.ordinal,
                        relation: part.relation,
                        epoch: current,
                        mask,
                    });
                }
                self.query_refreshes.fetch_add(1, Ordering::Relaxed);
                // A refresh re-admits without charging the gauge: the slot
                // is still occupied in the shared base table (overlay
                // entries are never stale — epochs are frozen), so the
                // distinct-slot count across base + overlays is unchanged.
                self.overlays[lane].store_query_counted(
                    shard_idx,
                    slot,
                    QueryEntry {
                        label: label.clone(),
                        parts,
                    },
                    false,
                );
                label
            }
            QueryLookup::Absent => {
                let part_ids = dissect_part_ids(&self.interner, id);
                let mut label = DisclosureLabel::bottom();
                let mut parts = Vec::with_capacity(part_ids.len());
                for (atom, ordinal, relation) in part_ids {
                    let mask = self.cached_atom_mask(lane, atom, ordinal, relation);
                    label.push(AtomLabel::new(relation, mask));
                    parts.push(QueryPart {
                        atom,
                        ordinal,
                        relation,
                        epoch: self.epoch_of(relation),
                        mask,
                    });
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                let occupied = self.base.query_entries.load(Ordering::Relaxed)
                    + self.overlay_gauge(|o| &o.query_entries);
                if occupied < self.capacity {
                    self.overlays[lane].store_query(
                        shard_idx,
                        slot,
                        QueryEntry {
                            label: label.clone(),
                            parts,
                        },
                    );
                }
                label
            }
        }
    }

    /// [`label_query`](QueryLabeler::label_query) through the given private
    /// overlay lane — the entry point pool tasks use with their
    /// [`lane_for`](Self::lane_for) lane.
    pub fn label_query_in(&self, lane: usize, query: &ConjunctiveQuery) -> DisclosureLabel {
        match intern_within_budget(
            &self.interner,
            &self.base.implicit_interns,
            self.capacity,
            query,
        ) {
            Some(id) => self.label_interned_in(lane, id),
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.inner.label_query(query)
            }
        }
    }

    /// Folds a batch through the given private overlay lane — the
    /// lane-aware counterpart of [`label_queries`](QueryLabeler::label_queries).
    pub fn label_queries_in(&self, lane: usize, queries: &[ConjunctiveQuery]) -> DisclosureLabel {
        let mut out = DisclosureLabel::bottom();
        for query in queries {
            out.combine_in_place(&self.label_query_in(lane, query));
        }
        out
    }

    /// Labels one query and returns the packed 64-bit representation.
    pub fn label_packed(&self, query: &ConjunctiveQuery) -> Vec<PackedLabel> {
        self.label_query(query).pack()
    }

    /// [`label_packed`](Self::label_packed) through the given private
    /// overlay lane.
    pub fn label_packed_in(&self, lane: usize, query: &ConjunctiveQuery) -> Vec<PackedLabel> {
        self.label_query_in(lane, query).pack()
    }

    /// Labels one pre-interned query and returns the packed representation.
    pub fn label_packed_interned(&self, id: QueryId) -> Vec<PackedLabel> {
        self.label_interned(id).pack()
    }

    /// [`label_packed_interned`](Self::label_packed_interned) through the
    /// given private overlay lane.
    pub fn label_packed_interned_in(&self, lane: usize, id: QueryId) -> Vec<PackedLabel> {
        self.label_interned_in(lane, id).pack()
    }
}

impl QueryLabeler for LabelerSnapshot {
    /// Interns the query (drawing on the implicit-intern budget **shared**
    /// with the parent labeler) and labels it at the frozen epoch vector
    /// through overlay lane 0; past the budget, unknown shapes serve
    /// through the frozen uncached pipeline, exactly like
    /// [`CachedLabeler::label_query`].
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        self.label_query_in(0, query)
    }

    fn security_views(&self) -> &SecurityViews {
        &self.inner.views
    }
}

/// Outcome of a query-cache lookup: fresh hit, stale entry to refresh, or
/// no entry at all.
enum QueryLookup {
    Fresh(DisclosureLabel),
    Stale(QueryEntry),
    Absent,
}

impl QueryLabeler for CachedLabeler {
    /// Interns the query (a read-locked lookup for known shapes, including
    /// alpha-variants) and labels it through the id-keyed caches.
    ///
    /// Once this path has interned [`capacity_limit`](Self::capacity_limit)
    /// distinct shapes, further unknown shapes are **not** interned: they
    /// label through the uncached [`BitVectorLabeler`] pipeline instead
    /// (identical labels, counted as misses), so an adversarial stream of
    /// never-repeating shapes cannot grow the arena without bound.
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        match intern_within_budget(
            &self.interner,
            &self.tables.implicit_interns,
            self.capacity,
            query,
        ) {
            Some(id) => self.label_interned(id),
            None => {
                // Arena budget exhausted: serve without interning.
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.inner.label_query(query)
            }
        }
    }

    fn security_views(&self) -> &SecurityViews {
        self.inner.security_views()
    }
}

/// Labels a batch of queries in parallel with any thread-safe labeler and
/// folds the per-query labels into the cumulative disclosure label of the
/// whole batch (the label of answering every query).
///
/// The batch is sharded into `threads` contiguous chunks, each labeled on a
/// scoped worker thread with the plain sequential
/// [`label_queries`](QueryLabeler::label_queries), and the partial labels
/// are folded with [`DisclosureLabel::combine_in_place`].  Folding is
/// order-insensitive (the label lattice LUB is associative and commutative),
/// so the result equals the sequential one; the test suite asserts this.
pub fn label_queries_parallel<L>(
    labeler: &L,
    queries: &[ConjunctiveQuery],
    threads: usize,
) -> DisclosureLabel
where
    L: QueryLabeler + Sync,
{
    let partials = map_chunks_parallel(queries, threads, |chunk| labeler.label_queries(chunk));
    let mut out = DisclosureLabel::bottom();
    for partial in &partials {
        out.combine_in_place(partial);
    }
    out
}

/// Batches shorter than this run on the calling thread even when multiple
/// worker threads are requested: for tiny batches, spawning scoped threads
/// costs more than the work they would parallelize (the crossover is
/// asserted by the `small_batches_run_on_the_calling_thread` test).  Entry
/// points that need a different crossover use
/// [`map_chunks_parallel_with_threshold`]; the policy layer exposes the
/// analogous knob as `ShardedPolicyStore::set_parallel_threshold`.
pub const SMALL_BATCH_SEQUENTIAL_THRESHOLD: usize = 32;

/// Batches shorter than this run sequentially instead of through the
/// persistent [`WorkerPool`] on the boxed-query batch entry points
/// ([`CachedLabeler::label_queries_batch`] / `label_batch` /
/// `label_batch_packed`).  The pooled path pays one labeler snapshot and
/// one owned copy of the batch up front; both amortize across a few hundred
/// queries, so the crossover sits well below the benchmark batch size of
/// 500 — on a multi-core host the parallel series engages (and wins) at
/// every Figure 5 sweep point, and on a single-core host the pool is
/// inline-only and the sequential path is taken regardless.
pub const POOLED_BATCH_THRESHOLD: usize = 256;

/// Chunks handed to the pool per worker on the pooled batch path: more
/// chunks than workers, so a skewed chunk leaves stealable work behind it.
const POOLED_CHUNKS_PER_WORKER: usize = 4;

/// Splits `items` into up to `threads` contiguous chunks and maps `f`
/// over them on scoped worker threads, returning the per-chunk results in
/// chunk order.  One chunk (or an empty input) runs on the calling thread,
/// and batches below [`SMALL_BATCH_SEQUENTIAL_THRESHOLD`] run sequentially
/// regardless of `threads`.
///
/// This is the one scoped-thread fan-out shared by every batch entry point
/// — the labelers' parallel paths here and the service's request loop —
/// so chunk sizing, the small-batch fallback and panic propagation live in
/// a single place.
pub fn map_chunks_parallel<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&[I]) -> T + Sync,
{
    map_chunks_parallel_with_threshold(items, threads, SMALL_BATCH_SEQUENTIAL_THRESHOLD, f)
}

/// [`map_chunks_parallel`] with an explicit sequential-fallback threshold:
/// batches shorter than `min_parallel_len` run as one chunk on the calling
/// thread.  `0` (or `1`) disables the fallback entirely.
pub fn map_chunks_parallel_with_threshold<I, T, F>(
    items: &[I],
    threads: usize,
    min_parallel_len: usize,
    f: F,
) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&[I]) -> T + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads <= 1 || items.len() < min_parallel_len {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|ck| scope.spawn(move || f(ck)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::{parser::parse_query, Catalog};

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    fn paper_labelers() -> (
        Catalog,
        BaselineLabeler,
        HashPartitionedLabeler,
        BitVectorLabeler,
    ) {
        let registry = SecurityViews::paper_example();
        let catalog = registry.catalog().clone();
        (
            catalog,
            BaselineLabeler::new(registry.clone()),
            HashPartitionedLabeler::new(registry.clone()),
            BitVectorLabeler::new(registry),
        )
    }

    #[test]
    fn figure_1_label_of_q1_is_v1() {
        let (c, baseline, _, _) = paper_labelers();
        let q1 = q(&c, "Q1(x) :- Meetings(x, 'Cathy')");
        let label = baseline.label_query(&q1);
        let registry = baseline.security_views();
        let described = label.describe(registry);
        assert!(described.contains("V1"));
        assert!(!described.contains("V2"));
        assert!(!described.contains("V3"));
        assert_eq!(label.len(), 1);
    }

    #[test]
    fn figure_1_label_of_q2_is_v1_and_v3() {
        let (c, baseline, _, _) = paper_labelers();
        let q2 = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let label = baseline.label_query(&q2);
        let described = label.describe(baseline.security_views());
        assert!(described.contains("V1"));
        assert!(described.contains("V3"));
        assert_eq!(label.len(), 2);
        assert!(!label.contains_top());
    }

    #[test]
    fn time_only_queries_label_to_v2_or_v1() {
        let (c, baseline, _, _) = paper_labelers();
        // The time-column projection is answerable by both V1 and V2, so its
        // ℓ⁺ has two bits set; it is *below* the V1-only label.
        let times = q(&c, "Q(x) :- Meetings(x, y)");
        let label = baseline.label_query(&times);
        assert_eq!(label.len(), 1);
        assert_eq!(label.atoms()[0].view_count(), 2);

        let full = baseline.label_query(&q(&c, "Q(x, y) :- Meetings(x, y)"));
        assert!(label.leq(&full));
        assert!(!full.leq(&label));
    }

    #[test]
    fn all_three_labelers_agree_on_paper_queries() {
        let (c, baseline, hashed, bitvec) = paper_labelers();
        let queries = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(p) :- Contacts(p, e, 'Manager'), Meetings(t, p)",
            "Q() :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
        ];
        for text in queries {
            let query = q(&c, text);
            let a = baseline.label_query(&query);
            let b = hashed.label_query(&query);
            let v = bitvec.label_query(&query);
            assert_eq!(a, b, "baseline vs hashed disagree on {text}");
            assert_eq!(a, v, "baseline vs bitvec disagree on {text}");
        }
    }

    #[test]
    fn unanswerable_atoms_get_top_labels() {
        // Remove V3 so Contacts queries become unanswerable.
        let catalog = Catalog::paper_example();
        let mut registry = SecurityViews::new(&catalog);
        registry
            .add_program("V1(x, y) :- Meetings(x, y)\nV2(x) :- Meetings(x, y)")
            .unwrap();
        let labeler = BitVectorLabeler::new(registry);
        let query = q(&catalog, "Q(x) :- Contacts(x, y, z)");
        let label = labeler.label_query(&query);
        assert!(label.contains_top());
        assert!(label
            .describe(labeler.security_views())
            .contains("no security view answers"));
    }

    #[test]
    fn label_queries_accumulates_across_a_history() {
        let (c, _, hashed, _) = paper_labelers();
        let history = vec![
            q(&c, "Q(x) :- Meetings(x, y)"),
            q(&c, "Q(x, y, z) :- Contacts(x, y, z)"),
        ];
        let cumulative = hashed.label_queries(&history);
        assert_eq!(cumulative.len(), 2);
        // Each individual label is below the cumulative one.
        for single in &history {
            assert!(hashed.label_query(single).leq(&cumulative));
        }
        // The empty history labels to ⊥.
        assert!(hashed.label_queries(&[]).is_bottom());
    }

    #[test]
    fn packed_labels_match_unpacked_ones() {
        let (c, _, _, bitvec) = paper_labelers();
        let query = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let packed = bitvec.label_packed(&query);
        let unpacked = bitvec.label_query(&query);
        assert_eq!(packed.len(), unpacked.len());
        for (p, a) in packed.iter().zip(unpacked.atoms()) {
            assert_eq!(p.relation(), a.relation);
            assert_eq!(p.mask() as u64, a.mask);
        }
    }

    #[test]
    fn constants_and_self_joins_use_the_general_fallback() {
        // Register a selection view (not projection-style) and check the
        // bit-vector labeler still gets it right via the fallback path.
        let catalog = Catalog::paper_example();
        let mut registry = SecurityViews::new(&catalog);
        registry
            .add_program(
                r"
                Vc(x)    :- Meetings(x, 'Cathy')
                Vd(x)    :- Meetings(x, x)
                V1(x, y) :- Meetings(x, y)
                ",
            )
            .unwrap();
        let baseline = BaselineLabeler::new(registry.clone());
        let bitvec = BitVectorLabeler::new(registry);

        for text in [
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q() :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y)",
        ] {
            let query = q(&catalog, text);
            assert_eq!(
                baseline.label_query(&query),
                bitvec.label_query(&query),
                "disagreement on {text}"
            );
        }
    }

    #[test]
    fn cached_labeler_agrees_with_the_other_variants() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let queries = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q() :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
            "Q(p) :- Contacts(p, e, 'Manager'), Meetings(t, p)",
        ];
        for text in queries {
            let query = q(&c, text);
            assert_eq!(
                baseline.label_query(&query),
                cached.label_query(&query),
                "baseline vs cached disagree on {text}"
            );
        }
        // A second pass over the same queries is answered from the cache.
        let before = cached.stats();
        for text in queries {
            cached.label_query(&q(&c, text));
        }
        let after = cached.stats();
        assert_eq!(after.misses, before.misses, "second pass must not miss");
        assert!(after.hits > before.hits);
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn cache_hits_on_alpha_renamed_queries() {
        let (c, _, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        cached.label_query(&q(&c, "Q(x) :- Meetings(x, y)"));
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        // Different variable names, same canonical form: a pure hit.
        cached.label_query(&q(&c, "Q(a) :- Meetings(a, b)"));
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        // clear_entries drops the tables but keeps the counters…
        cached.clear_entries();
        let kept = cached.stats();
        assert_eq!(kept.entries, 0);
        assert_eq!(kept.atom_entries, 0);
        assert_eq!((kept.hits, kept.misses), (1, 1));
        // …and the next lookup of the flushed shape is a (counted) miss.
        cached.label_query(&q(&c, "Q(x) :- Meetings(x, y)"));
        assert_eq!(cached.stats().misses, 2);
        // Full clearing also resets the counters.
        cached.clear();
        assert_eq!(cached.stats(), CacheStats::default());
    }

    #[test]
    fn cache_capacity_bounds_both_tables() {
        let (c, baseline, _, _) = paper_labelers();
        let tiny = CachedLabeler::with_capacity_limit(SecurityViews::paper_example(), 2);
        assert_eq!(tiny.capacity_limit(), 2);
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q(x) :- Meetings(x, 'Cathy')",
        ];
        for text in texts {
            let query = q(&c, text);
            // Labels stay correct even once the tables are full.
            assert_eq!(tiny.label_query(&query), baseline.label_query(&query));
        }
        let stats = tiny.stats();
        assert!(
            stats.entries <= 2,
            "query cache exceeded its cap: {stats:?}"
        );
        assert!(
            stats.atom_entries <= 2,
            "atom cache exceeded its cap: {stats:?}"
        );
        // Over-limit shapes are recomputed (a miss), never admitted.
        let before = tiny.stats();
        tiny.label_query(&q(&c, "Q(x) :- Meetings(x, 'Cathy')"));
        let after = tiny.stats();
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.entries, before.entries);
        // The default constructor uses the documented limit.
        let default = CachedLabeler::new(SecurityViews::paper_example());
        assert_eq!(default.capacity_limit(), DEFAULT_CACHE_CAPACITY);
    }

    #[test]
    fn cloning_keeps_entries_but_resets_counters() {
        let (c, _, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        cached.label_query(&q(&c, "Q(x) :- Meetings(x, y)"));
        let snapshot = cached.clone();
        assert_eq!(snapshot.stats().entries, 1);
        assert_eq!(snapshot.stats().misses, 0);
        // The snapshot answers the warmed shape without a miss.
        snapshot.label_query(&q(&c, "Q(z) :- Meetings(z, w)"));
        assert_eq!(snapshot.stats().misses, 0);
        assert_eq!(snapshot.stats().hits, 1);
    }

    #[test]
    fn parallel_batch_labeling_matches_sequential() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let texts = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q() :- Meetings(x, x)",
        ];
        let queries: Vec<ConjunctiveQuery> =
            (0..50).map(|i| q(&c, texts[i % texts.len()])).collect();
        let sequential = baseline.label_queries(&queries);
        assert_eq!(cached.label_queries_batch(&queries), sequential);
        // The generic parallel helper agrees for every labeler and any
        // thread count, including degenerate ones.
        for threads in [1, 2, 3, 64] {
            assert_eq!(
                label_queries_parallel(&baseline, &queries, threads),
                sequential
            );
            assert_eq!(
                label_queries_parallel(&cached, &queries, threads),
                sequential
            );
        }
        assert!(label_queries_parallel(&cached, &[], 4).is_bottom());
    }

    #[test]
    fn parallel_per_query_labels_preserve_order() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let queries: Vec<ConjunctiveQuery> = (0..17)
            .map(|i| {
                if i % 2 == 0 {
                    q(&c, "Q(x) :- Meetings(x, y)")
                } else {
                    q(&c, "Q(x, y, z) :- Contacts(x, y, z)")
                }
            })
            .collect();
        let expected: Vec<DisclosureLabel> = queries
            .iter()
            .map(|query| baseline.label_query(query))
            .collect();
        assert_eq!(cached.label_batch(&queries), expected);
        assert!(cached.label_batch(&[]).is_empty());
    }

    #[test]
    fn packed_batch_labels_match_per_query_packing() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let queries: Vec<ConjunctiveQuery> = [
            "Q(x) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
        ]
        .iter()
        .cycle()
        .take(20)
        .map(|t| q(&c, t))
        .collect();
        let expected: Vec<Vec<PackedLabel>> = queries
            .iter()
            .map(|query| baseline.label_query(query).pack())
            .collect();
        assert_eq!(cached.label_batch_packed(&queries), expected);
        assert_eq!(cached.label_packed(&queries[0]), expected[0]);
        assert!(cached.label_batch_packed(&[]).is_empty());
    }

    #[test]
    fn add_view_invalidates_only_the_affected_relation() {
        let mut cached = CachedLabeler::new(SecurityViews::paper_example());
        let c = cached.security_views().catalog().clone();
        let meetings_q = q(&c, "Q(x) :- Meetings(x, y)");
        let contacts_q = q(&c, "Q(x, y, z) :- Contacts(x, y, z)");
        let before_meetings = cached.label_query(&meetings_q);
        cached.label_query(&contacts_q);

        // A new Meetings view appears online (same shape as V2: it answers
        // the time projection, so the cached Meetings mask must change).
        let id = cached
            .add_view("Vtime", q(&c, "Vtime(x) :- Meetings(x, y)"))
            .unwrap();
        assert_eq!(cached.security_views().view(id).name, "Vtime");
        assert_eq!(cached.stats().invalidations, 1);

        // The Contacts entry still answers as a pure, fresh hit.
        let s0 = cached.stats();
        cached.label_query(&contacts_q);
        let s1 = cached.stats();
        assert_eq!(s1.hits, s0.hits + 1);
        assert_eq!(s1.query_refreshes, 0);
        assert_eq!(s1.atom_refreshes, 0);

        // The Meetings entry lazily refreshes and picks up the new view.
        let after_meetings = cached.label_query(&meetings_q);
        let s2 = cached.stats();
        assert_eq!(s2.query_refreshes, 1);
        assert_eq!(s2.atom_refreshes, 1);
        assert_ne!(before_meetings, after_meetings);
        let fresh = BitVectorLabeler::new(cached.security_views().clone());
        assert_eq!(after_meetings, fresh.label_query(&meetings_q));

        // Once refreshed, the entry is a plain hit again.
        let s3 = cached.stats();
        cached.label_query(&meetings_q);
        let s4 = cached.stats();
        assert_eq!(s4.hits, s3.hits + 1);
        assert_eq!(s4.query_refreshes, 1);
    }

    #[test]
    fn stale_entries_rederive_only_their_stale_atoms() {
        let mut cached = CachedLabeler::new(SecurityViews::paper_example());
        let c = cached.security_views().catalog().clone();
        // A query with one Meetings atom and one Contacts atom.
        let mixed = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        cached.label_query(&mixed);
        cached
            .add_view("Vsel", q(&c, "Vsel(x, y) :- Meetings(x, y)"))
            .unwrap();
        let before = cached.stats();
        let refreshed = cached.label_query(&mixed);
        let after = cached.stats();
        // Exactly one atom (the Meetings one) was re-derived; the Contacts
        // atom kept its mask without touching the slow path.
        assert_eq!(after.query_refreshes, before.query_refreshes + 1);
        assert_eq!(after.atom_refreshes, before.atom_refreshes + 1);
        assert_eq!(after.misses, before.misses);
        let fresh = BitVectorLabeler::new(cached.security_views().clone());
        assert_eq!(refreshed, fresh.label_query(&mixed));
    }

    #[test]
    fn invalidate_relation_refreshes_to_the_same_label() {
        let mut cached = CachedLabeler::new(SecurityViews::paper_example());
        let c = cached.security_views().catalog().clone();
        let query = q(&c, "Q(x) :- Meetings(x, y)");
        let before = cached.label_query(&query);
        let meetings = c.resolve("Meetings").unwrap();
        cached.invalidate_relation(meetings);
        assert_eq!(cached.stats().invalidations, 1);
        // Nothing actually changed, so the refresh reproduces the label —
        // but it must go through the refresh path, not a stale hit.
        assert_eq!(cached.label_query(&query), before);
        assert_eq!(cached.stats().query_refreshes, 1);
    }

    #[test]
    fn online_additions_respect_the_packed_view_budget() {
        use crate::security_views::MAX_PACKED_VIEWS_PER_RELATION;
        // Regression: the packed serving path carries 32 view bits per
        // relation, but the registry's general capacity is 64 — so an
        // unchecked online addition could push a relation past 32 and make
        // `AtomLabel::pack` silently truncate masks in release builds.
        // `add_view` must reject the 33rd view instead.
        let mut catalog = fdc_cq::Catalog::new();
        catalog.add_relation_with_arity("Wide", 2).unwrap();
        let mut cached = CachedLabeler::new(SecurityViews::new(&catalog));
        for i in 0..MAX_PACKED_VIEWS_PER_RELATION {
            let view = q(&catalog, "V(x, y) :- Wide(x, y)");
            cached.add_view(&format!("v{i}"), view).unwrap();
        }
        let probe = q(&catalog, "Q(x, y) :- Wide(x, y)");
        let before = cached.label_query(&probe);
        let stats_before = cached.stats();

        let overflow = q(&catalog, "V(x, y) :- Wide(x, y)");
        let err = cached.add_view("overflow", overflow).unwrap_err();
        assert_eq!(
            err,
            crate::error::LabelError::TooManyViewsForRelation {
                relation: "Wide".into(),
                count: MAX_PACKED_VIEWS_PER_RELATION + 1,
                limit: MAX_PACKED_VIEWS_PER_RELATION,
            }
        );
        // The rejection is side-effect free: no registry growth, no epoch
        // bump, no invalidation — and every mask still packs faithfully.
        assert_eq!(cached.security_views().len(), MAX_PACKED_VIEWS_PER_RELATION);
        assert_eq!(cached.stats().invalidations, stats_before.invalidations);
        assert_eq!(cached.label_query(&probe), before);
        for packed in cached.label_packed(&probe) {
            assert_eq!(u64::from(packed.mask()), before.atoms()[0].mask);
        }
    }

    #[test]
    fn incremental_view_additions_match_a_fresh_labeler() {
        let mut cached = CachedLabeler::new(SecurityViews::paper_example());
        let c = cached.security_views().catalog().clone();
        let probes = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q() :- Meetings(x, x)",
        ];
        let additions = [
            ("W0", "W0(x) :- Meetings(x, x)"),
            ("W1", "W1(y) :- Contacts(x, y, z)"),
            ("W2", "W2(x) :- Meetings(x, 'Cathy')"),
            ("W3", "W3(x, z) :- Contacts(x, y, z)"),
        ];
        for (name, text) in additions {
            // Warm between mutations so stale entries exist at every step.
            for text in probes {
                cached.label_query(&q(&c, text));
            }
            cached.add_view(name, q(&c, text)).unwrap();
        }
        let fresh = CachedLabeler::new(cached.security_views().clone());
        let bitvec = BitVectorLabeler::new(cached.security_views().clone());
        for text in probes {
            let query = q(&c, text);
            let incremental = cached.label_query(&query);
            assert_eq!(incremental, fresh.label_query(&query), "on {text}");
            assert_eq!(incremental, bitvec.label_query(&query), "on {text}");
        }
    }

    #[test]
    fn interned_labeling_agrees_with_the_boxed_paths() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let texts = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q() :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
            "Q(p) :- Contacts(p, e, 'Manager'), Meetings(t, p)",
        ];
        let queries: Vec<ConjunctiveQuery> = texts.iter().map(|t| q(&c, t)).collect();
        let ids: Vec<_> = queries.iter().map(|query| cached.intern(query)).collect();
        // Interning is canonical: an alpha-variant maps to the same id.
        assert_eq!(cached.intern(&q(&c, "Q(a) :- Meetings(a, b)")), ids[2]);
        for (query, &id) in queries.iter().zip(&ids) {
            assert_eq!(
                baseline.label_query(query),
                cached.label_interned(id),
                "baseline vs interned disagree on {query:?}"
            );
            assert_eq!(
                cached.label_packed_interned(id),
                baseline.label_query(query).pack()
            );
        }
        // The batch fold matches the sequential fold, and a warm pass is
        // answered entirely from the slot cache.
        let expected = baseline.label_queries(&queries);
        assert_eq!(cached.label_queries_interned(&ids), expected);
        let warm = cached.stats();
        assert_eq!(cached.label_queries_interned(&ids), expected);
        let after = cached.stats();
        assert_eq!(after.misses, warm.misses, "warm pass must not miss");
        assert_eq!(after.hits, warm.hits + ids.len() as u64);
        // Per-query interned labels line up positionally.
        let per_query: Vec<DisclosureLabel> = queries
            .iter()
            .map(|query| baseline.label_query(query))
            .collect();
        assert_eq!(cached.label_batch_interned(&ids), per_query);
        assert!(cached.label_queries_interned(&[]).is_bottom());
    }

    #[test]
    fn the_arena_budget_bounds_implicit_interning() {
        let (c, baseline, _, _) = paper_labelers();
        let tiny = CachedLabeler::with_capacity_limit(SecurityViews::paper_example(), 2);
        let num_views = tiny.security_views().len();
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x, y, z) :- Contacts(x, y, z)",
        ];
        for text in texts {
            let query = q(&c, text);
            // Labels stay correct on both sides of the arena budget.
            assert_eq!(tiny.label_query(&query), baseline.label_query(&query));
        }
        // The arena stopped growing at the budget (capacity + interned view
        // definitions + the dissected parts of admitted shapes), however
        // many never-repeating shapes keep arriving.
        let after_sweep = tiny.interner().read().unwrap().len();
        assert!(
            after_sweep <= 2 + num_views + 2,
            "arena grew past its budget: {after_sweep} ids"
        );
        for text in texts.iter().cycle().take(50) {
            tiny.label_query(&q(&c, text));
        }
        assert_eq!(tiny.interner().read().unwrap().len(), after_sweep);
        // Uncached shapes still count as misses, and explicit interning
        // remains exempt from the budget.
        let before = tiny.stats();
        tiny.label_query(&q(&c, "Q(x, z) :- Contacts(x, y, z)"));
        assert_eq!(tiny.stats().misses, before.misses + 1);
        let explicit = tiny.intern(&q(&c, "Q(y, z) :- Contacts(x, y, z)"));
        assert!(tiny.interner().read().unwrap().contains(explicit));
    }

    #[test]
    fn interned_entries_refresh_after_view_mutations() {
        let mut cached = CachedLabeler::new(SecurityViews::paper_example());
        let c = cached.security_views().catalog().clone();
        let meetings_q = q(&c, "Q(x) :- Meetings(x, y)");
        let id = cached.intern(&meetings_q);
        let before = cached.label_interned(id);
        cached
            .add_view("Vtime", q(&c, "Vtime(x) :- Meetings(x, y)"))
            .unwrap();
        // The stale interned entry re-derives and picks up the new view;
        // the id stays valid across the mutation.
        let after = cached.label_interned(id);
        assert_ne!(before, after);
        let fresh = BitVectorLabeler::new(cached.security_views().clone());
        assert_eq!(after, fresh.label_query(&meetings_q));
        assert_eq!(cached.stats().query_refreshes, 1);
        // label_queries_interned takes the refresh path too, not a stale hit.
        cached.invalidate_relation(c.resolve("Meetings").unwrap());
        assert_eq!(cached.label_queries_interned(&[id]), after);
        assert_eq!(cached.stats().query_refreshes, 2);
    }

    #[test]
    fn shared_interner_aligns_ids_across_clones() {
        let (c, _, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let id = cached.intern(&q(&c, "Q(x) :- Meetings(x, y)"));
        let snapshot = cached.clone();
        // The clone shares the interner, so ids issued by either side agree.
        assert_eq!(snapshot.intern(&q(&c, "Q(a) :- Meetings(a, b)")), id);
        let late = snapshot.intern(&q(&c, "Q(x, y) :- Meetings(x, y)"));
        assert_eq!(cached.intern(&q(&c, "Q(p, r) :- Meetings(p, r)")), late);
        let handle = cached.interner();
        assert!(handle.read().unwrap().contains(late));
    }

    #[test]
    fn small_batches_run_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let items: Vec<u32> = (0..10).collect();
        // Below the threshold the single chunk runs on the caller.
        let threads_used = map_chunks_parallel(&items, 8, |chunk| {
            (std::thread::current().id(), chunk.len())
        });
        assert_eq!(threads_used.len(), 1);
        assert_eq!(threads_used[0], (caller, items.len()));
        // At or past the threshold the batch fans out again.
        let big: Vec<u32> = (0..SMALL_BATCH_SEQUENTIAL_THRESHOLD as u32).collect();
        let fanned =
            map_chunks_parallel(&big, 4, |chunk| (std::thread::current().id(), chunk.len()));
        assert_eq!(fanned.len(), 4);
        assert!(fanned.iter().all(|(id, _)| *id != caller));
        assert_eq!(fanned.iter().map(|(_, n)| n).sum::<usize>(), big.len());
        // The explicit-threshold variant honors a custom crossover, and a
        // zero threshold disables the fallback.
        let custom = map_chunks_parallel_with_threshold(&items, 8, 11, |chunk| {
            (std::thread::current().id(), chunk.len())
        });
        assert_eq!(custom.len(), 1);
        assert_eq!(custom[0].0, caller);
        let forced = map_chunks_parallel_with_threshold(&items, 2, 0, |chunk| {
            (std::thread::current().id(), chunk.len())
        });
        assert_eq!(forced.len(), 2);
        assert!(forced.iter().all(|(id, _)| *id != caller));
        // Labeling results are unaffected on either side of the crossover.
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        for batch in [8usize, SMALL_BATCH_SEQUENTIAL_THRESHOLD + 8] {
            let queries: Vec<ConjunctiveQuery> = (0..batch)
                .map(|i| {
                    if i % 2 == 0 {
                        q(&c, "Q(x) :- Meetings(x, y)")
                    } else {
                        q(&c, "Q(x, y, z) :- Contacts(x, y, z)")
                    }
                })
                .collect();
            assert_eq!(
                label_queries_parallel(&cached, &queries, 4),
                baseline.label_queries(&queries)
            );
        }
    }

    #[test]
    fn atom_ordinals_minted_mid_batch_grow_the_table() {
        // Regression (satellite of the snapshot PR): the atom cache is a
        // slot vector indexed by the interner's dense single-atom ordinal.
        // Ordinals keep being minted while a batch is in flight, so a
        // lookup may carry an ordinal past the table's current length —
        // that must read as a miss and the write must grow the table, never
        // index out of bounds or silently drop the entry.
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        // Size the table with one early shape…
        cached.label_query(&q(&c, "Q(x) :- Meetings(x, y)"));
        let sized = cached.stats().atom_entries;
        // …then intern a burst of distinct shapes (minting ordinals far
        // past the sized table) and label them *newest first*, so the very
        // first write lands beyond the current table length.
        let texts = [
            "Q(x, y) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(z) :- Contacts(x, y, z)",
            "Q(x, z) :- Contacts(x, y, z)",
        ];
        let ids: Vec<_> = texts.iter().map(|t| cached.intern(&q(&c, t))).collect();
        for (&id, text) in ids.iter().zip(&texts).rev() {
            assert_eq!(
                cached.label_interned(id),
                baseline.label_query(&q(&c, text)),
                "mid-batch-minted ordinal mislabeled {text}"
            );
        }
        let grown = cached.stats();
        assert!(
            grown.atom_entries > sized,
            "the table must admit the late ordinals: {grown:?}"
        );
        // A second pass is all hits: nothing was silently skipped.
        let warm = cached.stats();
        for &id in &ids {
            cached.label_interned(id);
        }
        let after = cached.stats();
        assert_eq!(after.atom_misses, warm.atom_misses);
        assert_eq!(after.misses, warm.misses);
        // At capacity, late ordinals still label correctly (uncached) and
        // never corrupt the occupancy gauge.
        let tiny = CachedLabeler::with_capacity_limit(SecurityViews::paper_example(), 1);
        let tiny_ids: Vec<_> = texts.iter().map(|t| tiny.intern(&q(&c, t))).collect();
        for (&id, text) in tiny_ids.iter().zip(&texts).rev() {
            assert_eq!(
                tiny.label_interned(id),
                baseline.label_query(&q(&c, text)),
                "capacity-bounded mislabel on {text}"
            );
        }
        assert!(tiny.stats().atom_entries <= 1);
    }

    #[test]
    fn concurrent_clones_are_internally_consistent() {
        // Regression (satellite of the snapshot PR): Clone used to copy one
        // stripe at a time and carry the racing occupancy gauge over, so a
        // clone taken mid-labeling could disagree with its own slots.  The
        // consistent clone holds every stripe lock at once and recounts.
        let (c, baseline, _, _) = paper_labelers();
        let cached = std::sync::Arc::new(CachedLabeler::new(SecurityViews::paper_example()));
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(z) :- Contacts(x, y, z)",
            "Q(x, z) :- Contacts(x, y, z)",
        ];
        let queries: Vec<ConjunctiveQuery> = texts.iter().map(|t| q(&c, t)).collect();
        let clones = std::thread::scope(|scope| {
            let labeler = std::sync::Arc::clone(&cached);
            let writer = scope.spawn(move || {
                for query in queries.iter().cycle().take(400) {
                    labeler.label_query(query);
                }
            });
            let mut clones = Vec::new();
            for _ in 0..20 {
                clones.push(CachedLabeler::clone(&cached));
            }
            writer.join().expect("writer panicked");
            clones
        });
        for clone in clones {
            // The gauges equal the actual occupied slots of the cut…
            let stats = clone.stats();
            for text in texts {
                let query = q(&c, text);
                // …and every captured entry (fresh-tagged by construction —
                // no epoch moved) answers correctly without re-deriving.
                assert_eq!(clone.label_query(&query), baseline.label_query(&query));
            }
            // Shapes missing from the cut count as misses, so the captured
            // occupancy plus the clone's fresh misses must cover the
            // sweep exactly — a drifted gauge breaks this equality.
            let after = clone.stats();
            assert_eq!(
                stats.entries + (after.misses as usize),
                texts.len(),
                "clone gauge disagrees with its captured entries: {stats:?} then {after:?}"
            );
            assert_eq!(after.query_refreshes, 0, "no stale entries were served");
        }
    }

    #[test]
    fn stale_tagged_entries_in_a_clone_rederive_never_serve() {
        // The documented epoch contract behind the consistent clone: an
        // entry whose tag trails the clone's registry is re-derived on
        // lookup, never served stale.
        let mut cached = CachedLabeler::new(SecurityViews::paper_example());
        let c = cached.security_views().catalog().clone();
        let query = q(&c, "Q(x) :- Meetings(x, y)");
        cached.label_query(&query);
        // Mutate the registry *after* warming: clones taken now hold an
        // entry tagged with the old epoch.
        cached
            .add_view("Vnew", q(&c, "Vnew(x) :- Meetings(x, y)"))
            .unwrap();
        let clone = cached.clone();
        let fresh = BitVectorLabeler::new(clone.security_views().clone());
        assert_eq!(clone.label_query(&query), fresh.label_query(&query));
        assert_eq!(
            clone.stats().query_refreshes,
            1,
            "the stale entry refreshed"
        );
    }

    #[test]
    fn snapshots_serve_the_frozen_epoch_vector() {
        let mut cached = CachedLabeler::new(SecurityViews::paper_example());
        let c = cached.security_views().catalog().clone();
        let query = q(&c, "Q(x) :- Meetings(x, y)");
        let id = cached.intern(&query);
        let before = cached.label_interned(id);
        let snapshot = cached.snapshot();
        // The live labeler moves to a new epoch; the snapshot stays frozen.
        cached
            .add_view("Vtime", q(&c, "Vtime(x) :- Meetings(x, y)"))
            .unwrap();
        let after = cached.label_interned(id);
        assert_ne!(before, after, "the new view must change the live label");
        assert_eq!(snapshot.label_interned(id), before, "snapshot is frozen");
        assert_eq!(
            snapshot.label_query(&q(&c, "Q(a) :- Meetings(a, b)")),
            before,
            "boxed snapshot path labels at the frozen epochs too"
        );
        let frozen_meetings = snapshot
            .security_views()
            .epoch(c.resolve("Meetings").unwrap());
        let live_meetings = cached
            .security_views()
            .epoch(c.resolve("Meetings").unwrap());
        assert_eq!(live_meetings, frozen_meetings + 1);
        assert!(snapshot.contains(id));
    }

    #[test]
    fn snapshot_refreshes_do_not_consume_new_entry_capacity() {
        // Regression: the snapshot's capacity check sums base occupancy and
        // overlay additions.  A refresh of a stale *base* entry lands in
        // the overlay but occupies the same slot as before, so it must not
        // be charged — otherwise a refresh-heavy snapshot near capacity
        // wrongly refuses to cache brand-new shapes.
        let mut cached = CachedLabeler::with_capacity_limit(SecurityViews::paper_example(), 4);
        let c = cached.security_views().catalog().clone();
        let warm = [
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
        ];
        for text in warm {
            cached.label_query(&q(&c, text));
        }
        assert_eq!(cached.stats().entries, 3);
        cached.invalidate_relation(c.resolve("Meetings").unwrap());
        let snapshot = cached.snapshot();
        // The snapshot refreshes every stale base entry…
        for text in warm {
            snapshot.label_query(&q(&c, text));
        }
        let refreshed = snapshot.stats();
        assert_eq!(refreshed.query_refreshes, 3);
        assert_eq!(refreshed.entries, 0, "refreshes are not new slots");
        assert_eq!(refreshed.atom_entries, 0, "atom refreshes neither");
        // …and still has room to admit a brand-new shape under the cap.
        let fresh = q(&c, "Q(x, y, z) :- Contacts(x, y, z)");
        snapshot.label_query(&fresh);
        let before = snapshot.stats();
        assert_eq!(before.entries, 1, "the new shape was admitted");
        snapshot.label_query(&fresh);
        let after = snapshot.stats();
        assert_eq!(after.misses, before.misses, "second lookup must hit");
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn retired_snapshots_publish_their_cache_work() {
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let c = cached.security_views().catalog().clone();
        let snapshot = cached.snapshot();
        // The snapshot computes two shapes the live labeler never saw.
        let contacts = q(&c, "Q(x, y, z) :- Contacts(x, y, z)");
        let meetings = q(&c, "Q(x) :- Meetings(x, y)");
        snapshot.label_query(&contacts);
        snapshot.label_query(&meetings);
        assert_eq!(snapshot.stats().misses, 2);
        assert_eq!(cached.stats().entries, 0, "overlay work is private");
        cached.retire_snapshot(&snapshot);
        // Entries and counters flowed back…
        let live = cached.stats();
        assert_eq!(live.entries, 2);
        assert_eq!(live.misses, 2);
        // …so the live labeler now hits on the snapshot-warmed shapes.
        cached.label_query(&contacts);
        assert_eq!(cached.stats().hits, 1);
        // Retirement drained the overlay: retiring again is a no-op.
        cached.retire_snapshot(&snapshot);
        assert_eq!(cached.stats().misses, 2);
        assert_eq!(cached.stats().entries, 2);
    }

    #[test]
    fn projection_shape_analysis() {
        let c = Catalog::paper_example();
        assert_eq!(
            projection_shape(&q(&c, "V(x, y) :- Meetings(x, y)")),
            Some(0b11)
        );
        assert_eq!(
            projection_shape(&q(&c, "V(x) :- Meetings(x, y)")),
            Some(0b01)
        );
        assert_eq!(
            projection_shape(&q(&c, "V(y) :- Meetings(x, y)")),
            Some(0b10)
        );
        assert_eq!(projection_shape(&q(&c, "V() :- Meetings(x, y)")), Some(0));
        assert_eq!(
            projection_shape(&q(&c, "V(x) :- Meetings(x, 'Cathy')")),
            None
        );
        assert_eq!(projection_shape(&q(&c, "V(x) :- Meetings(x, x)")), None);
    }
}
