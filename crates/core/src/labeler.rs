//! Production disclosure labelers for arbitrary conjunctive queries.
//!
//! All three labelers implement the same pipeline — `Dissect` (Section 5.2)
//! followed by per-atom `ℓ⁺` computation against the registered security
//! views — and differ only in the engineering of the per-atom step, exactly
//! like the three measured variants of the paper's Figure 5:
//!
//! * [`BaselineLabeler`] — a straightforward adaptation of `LabelGen`
//!   (Section 4.2): for every dissected atom it scans **every** registered
//!   security view and runs the rewriting check.
//! * [`HashPartitionedLabeler`] — pre-partitions the security views by base
//!   relation in a hash table, so each atom is only checked against the
//!   views of its own relation.
//! * [`BitVectorLabeler`] — hash partitioning plus the packed bit-vector
//!   `ℓ⁺` representation of Section 6.1; additionally caches the structural
//!   shape of each security view so the per-candidate check avoids the
//!   general rewriting machinery for the common projection-style views.
//!
//! All three produce identical [`DisclosureLabel`]s; the equivalence is
//! asserted by the test suite and exercised again by the Figure 5 benchmark.

use std::collections::HashMap;

use fdc_cq::rewriting::rewritable_from_single;
use fdc_cq::{ConjunctiveQuery, RelId, Term, VarKind};

use crate::dissect::dissect;
use crate::label::{AtomLabel, DisclosureLabel, ViewMask};
use crate::security_views::{SecurityViewId, SecurityViews};

/// A disclosure labeler for conjunctive queries.
pub trait QueryLabeler {
    /// Labels a single query.
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel;

    /// Labels a set of queries (the cumulative label of answering them all).
    fn label_queries(&self, queries: &[ConjunctiveQuery]) -> DisclosureLabel {
        let mut out = DisclosureLabel::bottom();
        for q in queries {
            out.combine_in_place(&self.label_query(q));
        }
        out
    }

    /// The security-view registry the labeler was built from.
    fn security_views(&self) -> &SecurityViews;
}

// ---------------------------------------------------------------------------
// Baseline: LabelGen with a linear scan over all security views.
// ---------------------------------------------------------------------------

/// The baseline labeler of Figure 5: `Dissect` + a linear scan of every
/// security view for every dissected atom.
#[derive(Debug, Clone)]
pub struct BaselineLabeler {
    views: SecurityViews,
}

impl BaselineLabeler {
    /// Builds a baseline labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        BaselineLabeler { views }
    }
}

impl QueryLabeler for BaselineLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mut mask: ViewMask = 0;
            // Deliberately scan the whole registry (no partitioning): this is
            // the "baseline" curve of Figure 5.
            for (_, view) in self.views.iter() {
                if view.relation == relation
                    && rewritable_from_single(&atom_query, &view.query)
                {
                    mask |= 1u64 << view.bit;
                }
            }
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

// ---------------------------------------------------------------------------
// Hash-partitioned: only scan the views of the atom's relation.
// ---------------------------------------------------------------------------

/// The "hashing only" labeler of Figure 5: security views are pre-partitioned
/// by relation, so each atom is checked only against its own relation's views.
#[derive(Debug, Clone)]
pub struct HashPartitionedLabeler {
    views: SecurityViews,
    by_relation: HashMap<RelId, Vec<SecurityViewId>>,
}

impl HashPartitionedLabeler {
    /// Builds a hash-partitioned labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        let mut by_relation: HashMap<RelId, Vec<SecurityViewId>> = HashMap::new();
        for (id, view) in views.iter() {
            by_relation.entry(view.relation).or_default().push(id);
        }
        HashPartitionedLabeler { views, by_relation }
    }
}

impl QueryLabeler for HashPartitionedLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mut mask: ViewMask = 0;
            if let Some(candidates) = self.by_relation.get(&relation) {
                for id in candidates {
                    let view = self.views.view(*id);
                    if rewritable_from_single(&atom_query, &view.query) {
                        mask |= 1u64 << view.bit;
                    }
                }
            }
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

// ---------------------------------------------------------------------------
// Bit-vector: hash partitioning + precompiled view shapes + packed labels.
// ---------------------------------------------------------------------------

/// Pre-analyzed shape of a single-atom security view, used by
/// [`BitVectorLabeler`] to answer `{atom} ⪯ {view}` with plain bit tests in
/// the common case.
///
/// A *projection-style* view has no constants and no repeated variables: it
/// is fully described by the bit mask of the positions it exposes
/// (distinguished positions).  For such views, an atom query with exposed
/// positions `E`, constant positions `C` and no repeated variables is
/// answerable iff `E ∪ C ⊆ exposed(view)`.  Views or atoms that fall outside
/// this shape fall back to the general rewriting check.
#[derive(Debug, Clone)]
struct CompiledView {
    id: SecurityViewId,
    bit: u32,
    /// Bit `i` set iff position `i` of the view is a distinguished variable.
    exposed_positions: Option<u64>,
}

/// The fully optimized labeler of Figure 5 ("bit vectors + hashing") and
/// Section 6.1.
#[derive(Debug, Clone)]
pub struct BitVectorLabeler {
    views: SecurityViews,
    by_relation: HashMap<RelId, Vec<CompiledView>>,
}

impl BitVectorLabeler {
    /// Builds a bit-vector labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        let mut by_relation: HashMap<RelId, Vec<CompiledView>> = HashMap::new();
        for (id, view) in views.iter() {
            by_relation
                .entry(view.relation)
                .or_default()
                .push(CompiledView {
                    id,
                    bit: view.bit,
                    exposed_positions: projection_shape(&view.query),
                });
        }
        BitVectorLabeler { views, by_relation }
    }

    /// Labels a query and returns the packed representation directly.
    pub fn label_packed(&self, query: &ConjunctiveQuery) -> Vec<crate::label::PackedLabel> {
        self.label_query(query).pack()
    }
}

/// If the single-atom query is projection-style (no constants, no repeated
/// variables), returns the bit mask of positions holding distinguished
/// variables; otherwise `None`.
fn projection_shape(query: &ConjunctiveQuery) -> Option<u64> {
    let atom = query.atoms().first()?;
    if atom.arity() > 64 || atom.has_constants() || atom.has_repeated_vars() {
        return None;
    }
    let mut mask = 0u64;
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Var(_, VarKind::Distinguished) => mask |= 1u64 << i,
            Term::Var(_, VarKind::Existential) => {}
            Term::Const(_) => return None,
        }
    }
    Some(mask)
}

/// For a single-atom query without repeated variables, the mask of positions
/// a projection-style view must expose to answer it: the positions holding
/// distinguished variables or constants.  `None` if the atom has repeated
/// variables (those need the general rewriting check).
///
/// Constants are included because a selection such as `M(x, 'Cathy')` is
/// answerable from a projection view exactly when the constant's column is
/// exposed (the rewriting applies the selection on top of the view).
fn atom_needs(query: &ConjunctiveQuery) -> Option<u64> {
    let atom = query.atoms().first()?;
    if atom.arity() > 64 || atom.has_repeated_vars() {
        return None;
    }
    let mut needed = 0u64;
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Var(_, VarKind::Distinguished) | Term::Const(_) => needed |= 1u64 << i,
            Term::Var(_, VarKind::Existential) => {}
        }
    }
    Some(needed)
}

impl QueryLabeler for BitVectorLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mut mask: ViewMask = 0;
            if let Some(candidates) = self.by_relation.get(&relation) {
                let needs = atom_needs(&atom_query);
                for compiled in candidates {
                    let answers = match (needs, compiled.exposed_positions) {
                        // Fast path: projection-style atom vs projection-style
                        // view — answerable iff every needed position is
                        // exposed by the view.
                        (Some(needed), Some(exposed)) => needed & !exposed == 0,
                        // Fallback: the general rewriting check.
                        _ => rewritable_from_single(
                            &atom_query,
                            &self.views.view(compiled.id).query,
                        ),
                    };
                    if answers {
                        mask |= 1u64 << compiled.bit;
                    }
                }
            }
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::{parser::parse_query, Catalog};

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    fn paper_labelers() -> (Catalog, BaselineLabeler, HashPartitionedLabeler, BitVectorLabeler) {
        let registry = SecurityViews::paper_example();
        let catalog = registry.catalog().clone();
        (
            catalog,
            BaselineLabeler::new(registry.clone()),
            HashPartitionedLabeler::new(registry.clone()),
            BitVectorLabeler::new(registry),
        )
    }

    #[test]
    fn figure_1_label_of_q1_is_v1() {
        let (c, baseline, _, _) = paper_labelers();
        let q1 = q(&c, "Q1(x) :- Meetings(x, 'Cathy')");
        let label = baseline.label_query(&q1);
        let registry = baseline.security_views();
        let described = label.describe(registry);
        assert!(described.contains("V1"));
        assert!(!described.contains("V2"));
        assert!(!described.contains("V3"));
        assert_eq!(label.len(), 1);
    }

    #[test]
    fn figure_1_label_of_q2_is_v1_and_v3() {
        let (c, baseline, _, _) = paper_labelers();
        let q2 = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let label = baseline.label_query(&q2);
        let described = label.describe(baseline.security_views());
        assert!(described.contains("V1"));
        assert!(described.contains("V3"));
        assert_eq!(label.len(), 2);
        assert!(!label.contains_top());
    }

    #[test]
    fn time_only_queries_label_to_v2_or_v1() {
        let (c, baseline, _, _) = paper_labelers();
        // The time-column projection is answerable by both V1 and V2, so its
        // ℓ⁺ has two bits set; it is *below* the V1-only label.
        let times = q(&c, "Q(x) :- Meetings(x, y)");
        let label = baseline.label_query(&times);
        assert_eq!(label.len(), 1);
        assert_eq!(label.atoms()[0].view_count(), 2);

        let full = baseline.label_query(&q(&c, "Q(x, y) :- Meetings(x, y)"));
        assert!(label.leq(&full));
        assert!(!full.leq(&label));
    }

    #[test]
    fn all_three_labelers_agree_on_paper_queries() {
        let (c, baseline, hashed, bitvec) = paper_labelers();
        let queries = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(p) :- Contacts(p, e, 'Manager'), Meetings(t, p)",
            "Q() :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
        ];
        for text in queries {
            let query = q(&c, text);
            let a = baseline.label_query(&query);
            let b = hashed.label_query(&query);
            let v = bitvec.label_query(&query);
            assert_eq!(a, b, "baseline vs hashed disagree on {text}");
            assert_eq!(a, v, "baseline vs bitvec disagree on {text}");
        }
    }

    #[test]
    fn unanswerable_atoms_get_top_labels() {
        // Remove V3 so Contacts queries become unanswerable.
        let catalog = Catalog::paper_example();
        let mut registry = SecurityViews::new(&catalog);
        registry
            .add_program("V1(x, y) :- Meetings(x, y)\nV2(x) :- Meetings(x, y)")
            .unwrap();
        let labeler = BitVectorLabeler::new(registry);
        let query = q(&catalog, "Q(x) :- Contacts(x, y, z)");
        let label = labeler.label_query(&query);
        assert!(label.contains_top());
        assert!(label
            .describe(labeler.security_views())
            .contains("no security view answers"));
    }

    #[test]
    fn label_queries_accumulates_across_a_history() {
        let (c, _, hashed, _) = paper_labelers();
        let history = vec![
            q(&c, "Q(x) :- Meetings(x, y)"),
            q(&c, "Q(x, y, z) :- Contacts(x, y, z)"),
        ];
        let cumulative = hashed.label_queries(&history);
        assert_eq!(cumulative.len(), 2);
        // Each individual label is below the cumulative one.
        for single in &history {
            assert!(hashed.label_query(single).leq(&cumulative));
        }
        // The empty history labels to ⊥.
        assert!(hashed.label_queries(&[]).is_bottom());
    }

    #[test]
    fn packed_labels_match_unpacked_ones() {
        let (c, _, _, bitvec) = paper_labelers();
        let query = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let packed = bitvec.label_packed(&query);
        let unpacked = bitvec.label_query(&query);
        assert_eq!(packed.len(), unpacked.len());
        for (p, a) in packed.iter().zip(unpacked.atoms()) {
            assert_eq!(p.relation(), a.relation);
            assert_eq!(p.mask() as u64, a.mask);
        }
    }

    #[test]
    fn constants_and_self_joins_use_the_general_fallback() {
        // Register a selection view (not projection-style) and check the
        // bit-vector labeler still gets it right via the fallback path.
        let catalog = Catalog::paper_example();
        let mut registry = SecurityViews::new(&catalog);
        registry
            .add_program(
                r"
                Vc(x)    :- Meetings(x, 'Cathy')
                Vd(x)    :- Meetings(x, x)
                V1(x, y) :- Meetings(x, y)
                ",
            )
            .unwrap();
        let baseline = BaselineLabeler::new(registry.clone());
        let bitvec = BitVectorLabeler::new(registry);

        for text in [
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q() :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y)",
        ] {
            let query = q(&catalog, text);
            assert_eq!(
                baseline.label_query(&query),
                bitvec.label_query(&query),
                "disagreement on {text}"
            );
        }
    }

    #[test]
    fn projection_shape_analysis() {
        let c = Catalog::paper_example();
        assert_eq!(
            projection_shape(&q(&c, "V(x, y) :- Meetings(x, y)")),
            Some(0b11)
        );
        assert_eq!(projection_shape(&q(&c, "V(x) :- Meetings(x, y)")), Some(0b01));
        assert_eq!(projection_shape(&q(&c, "V(y) :- Meetings(x, y)")), Some(0b10));
        assert_eq!(projection_shape(&q(&c, "V() :- Meetings(x, y)")), Some(0));
        assert_eq!(projection_shape(&q(&c, "V(x) :- Meetings(x, 'Cathy')")), None);
        assert_eq!(projection_shape(&q(&c, "V(x) :- Meetings(x, x)")), None);
    }
}
