//! Production disclosure labelers for arbitrary conjunctive queries.
//!
//! All three labelers implement the same pipeline — `Dissect` (Section 5.2)
//! followed by per-atom `ℓ⁺` computation against the registered security
//! views — and differ only in the engineering of the per-atom step, exactly
//! like the three measured variants of the paper's Figure 5:
//!
//! * [`BaselineLabeler`] — a straightforward adaptation of `LabelGen`
//!   (Section 4.2): for every dissected atom it scans **every** registered
//!   security view and runs the rewriting check.
//! * [`HashPartitionedLabeler`] — pre-partitions the security views by base
//!   relation in a hash table, so each atom is only checked against the
//!   views of its own relation.
//! * [`BitVectorLabeler`] — hash partitioning plus the packed bit-vector
//!   `ℓ⁺` representation of Section 6.1; additionally caches the structural
//!   shape of each security view so the per-candidate check avoids the
//!   general rewriting machinery for the common projection-style views.
//!
//! A fourth variant goes beyond the paper's measured configurations:
//!
//! * [`CachedLabeler`] — a [`BitVectorLabeler`] plus canonical-form memo
//!   tables at two levels: whole queries (a hit skips folding, dissection
//!   and labeling entirely) and single atoms (per-atom `ℓ⁺` masks shared
//!   across query shapes).  Combined with the sharded batch entry point
//!   [`label_queries_parallel`] this is the high-throughput serving path.
//!
//! All variants produce identical [`DisclosureLabel`]s; the equivalence is
//! asserted by the test suite and exercised again by the Figure 5 benchmark.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use fdc_cq::canonical::{atom_key, query_key, AtomKey, QueryKey};
use fdc_cq::rewriting::rewritable_from_single;
use fdc_cq::{ConjunctiveQuery, RelId, Term, VarKind};

use crate::dissect::dissect;
use crate::label::{AtomLabel, DisclosureLabel, PackedLabel, ViewMask};
use crate::security_views::{SecurityViewId, SecurityViews};

/// A disclosure labeler for conjunctive queries.
pub trait QueryLabeler {
    /// Labels a single query.
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel;

    /// Labels a set of queries (the cumulative label of answering them all).
    fn label_queries(&self, queries: &[ConjunctiveQuery]) -> DisclosureLabel {
        let mut out = DisclosureLabel::bottom();
        for q in queries {
            out.combine_in_place(&self.label_query(q));
        }
        out
    }

    /// The security-view registry the labeler was built from.
    fn security_views(&self) -> &SecurityViews;
}

// ---------------------------------------------------------------------------
// Baseline: LabelGen with a linear scan over all security views.
// ---------------------------------------------------------------------------

/// The baseline labeler of Figure 5: `Dissect` + a linear scan of every
/// security view for every dissected atom.
#[derive(Debug, Clone)]
pub struct BaselineLabeler {
    views: SecurityViews,
}

impl BaselineLabeler {
    /// Builds a baseline labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        BaselineLabeler { views }
    }
}

impl QueryLabeler for BaselineLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mut mask: ViewMask = 0;
            // Deliberately scan the whole registry (no partitioning): this is
            // the "baseline" curve of Figure 5.
            for (_, view) in self.views.iter() {
                if view.relation == relation && rewritable_from_single(&atom_query, &view.query) {
                    mask |= 1u64 << view.bit;
                }
            }
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

// ---------------------------------------------------------------------------
// Hash-partitioned: only scan the views of the atom's relation.
// ---------------------------------------------------------------------------

/// The "hashing only" labeler of Figure 5: security views are pre-partitioned
/// by relation, so each atom is checked only against its own relation's views.
#[derive(Debug, Clone)]
pub struct HashPartitionedLabeler {
    views: SecurityViews,
    by_relation: HashMap<RelId, Vec<SecurityViewId>>,
}

impl HashPartitionedLabeler {
    /// Builds a hash-partitioned labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        let mut by_relation: HashMap<RelId, Vec<SecurityViewId>> = HashMap::new();
        for (id, view) in views.iter() {
            by_relation.entry(view.relation).or_default().push(id);
        }
        HashPartitionedLabeler { views, by_relation }
    }
}

impl QueryLabeler for HashPartitionedLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mut mask: ViewMask = 0;
            if let Some(candidates) = self.by_relation.get(&relation) {
                for id in candidates {
                    let view = self.views.view(*id);
                    if rewritable_from_single(&atom_query, &view.query) {
                        mask |= 1u64 << view.bit;
                    }
                }
            }
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

// ---------------------------------------------------------------------------
// Bit-vector: hash partitioning + precompiled view shapes + packed labels.
// ---------------------------------------------------------------------------

/// Pre-analyzed shape of a single-atom security view, used by
/// [`BitVectorLabeler`] to answer `{atom} ⪯ {view}` with plain bit tests in
/// the common case.
///
/// A *projection-style* view has no constants and no repeated variables: it
/// is fully described by the bit mask of the positions it exposes
/// (distinguished positions).  For such views, an atom query with exposed
/// positions `E`, constant positions `C` and no repeated variables is
/// answerable iff `E ∪ C ⊆ exposed(view)`.  Views or atoms that fall outside
/// this shape fall back to the general rewriting check.
#[derive(Debug, Clone)]
struct CompiledView {
    id: SecurityViewId,
    bit: u32,
    /// Bit `i` set iff position `i` of the view is a distinguished variable.
    exposed_positions: Option<u64>,
}

/// The fully optimized labeler of Figure 5 ("bit vectors + hashing") and
/// Section 6.1.
#[derive(Debug, Clone)]
pub struct BitVectorLabeler {
    views: SecurityViews,
    by_relation: HashMap<RelId, Vec<CompiledView>>,
}

impl BitVectorLabeler {
    /// Builds a bit-vector labeler over a view registry.
    pub fn new(views: SecurityViews) -> Self {
        let mut by_relation: HashMap<RelId, Vec<CompiledView>> = HashMap::new();
        for (id, view) in views.iter() {
            by_relation
                .entry(view.relation)
                .or_default()
                .push(CompiledView {
                    id,
                    bit: view.bit,
                    exposed_positions: projection_shape(&view.query),
                });
        }
        BitVectorLabeler { views, by_relation }
    }

    /// Labels a query and returns the packed representation directly.
    pub fn label_packed(&self, query: &ConjunctiveQuery) -> Vec<PackedLabel> {
        self.label_query(query).pack()
    }

    /// Computes `ℓ⁺` of one dissected single-atom query as a packed view
    /// mask, using the compiled projection shapes where possible.
    ///
    /// This is the per-atom step of [`label_query`](QueryLabeler::label_query),
    /// exposed so that memoizing layers (see
    /// [`CachedLabeler`](crate::labeler::CachedLabeler)) can fill cache
    /// misses without re-dissecting.  The query must be single-atom
    /// (multi-atom queries go through `Dissect` first); debug builds assert
    /// this, release builds would silently consider only the first atom.
    pub fn atom_mask(&self, atom_query: &ConjunctiveQuery) -> ViewMask {
        debug_assert!(
            atom_query.is_single_atom(),
            "atom_mask requires a dissected single-atom query"
        );
        let relation = atom_query.atoms()[0].relation;
        let mut mask: ViewMask = 0;
        if let Some(candidates) = self.by_relation.get(&relation) {
            let needs = atom_needs(atom_query);
            for compiled in candidates {
                let answers = match (needs, compiled.exposed_positions) {
                    // Fast path: projection-style atom vs projection-style
                    // view — answerable iff every needed position is
                    // exposed by the view.
                    (Some(needed), Some(exposed)) => needed & !exposed == 0,
                    // Fallback: the general rewriting check.
                    _ => rewritable_from_single(atom_query, &self.views.view(compiled.id).query),
                };
                if answers {
                    mask |= 1u64 << compiled.bit;
                }
            }
        }
        mask
    }
}

/// If the single-atom query is projection-style (no constants, no repeated
/// variables), returns the bit mask of positions holding distinguished
/// variables; otherwise `None`.
fn projection_shape(query: &ConjunctiveQuery) -> Option<u64> {
    let atom = query.atoms().first()?;
    if atom.arity() > 64 || atom.has_constants() || atom.has_repeated_vars() {
        return None;
    }
    let mut mask = 0u64;
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Var(_, VarKind::Distinguished) => mask |= 1u64 << i,
            Term::Var(_, VarKind::Existential) => {}
            Term::Const(_) => return None,
        }
    }
    Some(mask)
}

/// For a single-atom query without repeated variables, the mask of positions
/// a projection-style view must expose to answer it: the positions holding
/// distinguished variables or constants.  `None` if the atom has repeated
/// variables (those need the general rewriting check).
///
/// Constants are included because a selection such as `M(x, 'Cathy')` is
/// answerable from a projection view exactly when the constant's column is
/// exposed (the rewriting applies the selection on top of the view).
fn atom_needs(query: &ConjunctiveQuery) -> Option<u64> {
    let atom = query.atoms().first()?;
    if atom.arity() > 64 || atom.has_repeated_vars() {
        return None;
    }
    let mut needed = 0u64;
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Var(_, VarKind::Distinguished) | Term::Const(_) => needed |= 1u64 << i,
            Term::Var(_, VarKind::Existential) => {}
        }
    }
    Some(needed)
}

impl QueryLabeler for BitVectorLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mask = self.atom_mask(&atom_query);
            label.push(AtomLabel::new(relation, mask));
        }
        label
    }

    fn security_views(&self) -> &SecurityViews {
        &self.views
    }
}

// ---------------------------------------------------------------------------
// Cached: canonical-form memoization of the per-atom ℓ⁺ step.
// ---------------------------------------------------------------------------

/// Hit/miss counters of a [`CachedLabeler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Whole-query labelings answered from the query-level cache.
    pub hits: u64,
    /// Whole-query labelings that ran the labeling pipeline.
    pub misses: u64,
    /// Number of distinct canonical query forms currently cached.
    pub entries: usize,
    /// Per-atom `ℓ⁺` computations answered from the atom-level cache
    /// (only query-level misses reach it).
    pub atom_hits: u64,
    /// Per-atom `ℓ⁺` computations that ran the full per-view check.
    pub atom_misses: u64,
    /// Number of distinct canonical atom forms currently cached.
    pub atom_entries: usize,
}

impl CacheStats {
    /// Query-level hit rate in `[0, 1]`; `0` before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A labeler that memoizes labeling by canonical form, at two levels.
///
/// A disclosure label depends only on the query's structure up to variable
/// renaming — the atoms, the constants, the variable-equality pattern and
/// the distinguished/existential tags.  [`fdc_cq::canonical::query_key`]
/// captures exactly that, so the **query-level** cache maps canonical query
/// forms straight to finished [`DisclosureLabel`]s: a hit skips the whole
/// pipeline, including the NP-hard folding step of `Dissect`.  Query-level
/// misses run the pipeline with a second, **atom-level** cache keyed by
/// [`fdc_cq::canonical::atom_key`], memoizing the per-atom `ℓ⁺` masks that
/// recur across distinct query shapes (e.g. the `Friend` join atoms the
/// Section 7.2 workload attaches to every friends-audience query).
///
/// Atom-level misses are filled by a [`BitVectorLabeler`], so even the
/// worst-case path is the fastest non-cached variant; the labeler never
/// produces a different label than the paper's three Figure 5 variants
/// (asserted by the property tests).
///
/// Both caches are internally synchronized: labeling takes `&self`, so one
/// `CachedLabeler` can be shared across worker threads — see
/// [`label_queries_parallel`] for the batch entry point.
///
/// Memory is bounded: each cache stops admitting new entries once it holds
/// [`capacity_limit`](Self::capacity_limit) canonical forms (lookups and
/// the computed results are unaffected — over-limit shapes are simply
/// recomputed), so a high-cardinality or adversarial stream of
/// never-repeating shapes cannot grow the tables without bound.
#[derive(Debug)]
pub struct CachedLabeler {
    inner: BitVectorLabeler,
    query_cache: RwLock<HashMap<QueryKey, DisclosureLabel>>,
    atom_cache: RwLock<HashMap<AtomKey, ViewMask>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    atom_hits: AtomicU64,
    atom_misses: AtomicU64,
}

/// Default per-cache entry limit of a [`CachedLabeler`].
///
/// Entries are a canonical key plus a small label (tens to a few hundred
/// bytes each), so the default bounds each table to the low hundreds of
/// megabytes in the worst case while comfortably holding every shape a
/// realistic workload produces.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

impl Clone for CachedLabeler {
    /// Cloning snapshots the cached entries and resets the counters.
    fn clone(&self) -> Self {
        CachedLabeler {
            inner: self.inner.clone(),
            query_cache: RwLock::new(self.read_query_cache().clone()),
            atom_cache: RwLock::new(self.read_atom_cache().clone()),
            capacity: self.capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            atom_hits: AtomicU64::new(0),
            atom_misses: AtomicU64::new(0),
        }
    }
}

impl CachedLabeler {
    /// Builds a caching labeler over a view registry with the
    /// [default capacity limit](DEFAULT_CACHE_CAPACITY).
    pub fn new(views: SecurityViews) -> Self {
        Self::with_capacity_limit(views, DEFAULT_CACHE_CAPACITY)
    }

    /// Builds a caching labeler whose query- and atom-level caches each
    /// admit at most `capacity` entries (at least 1).
    pub fn with_capacity_limit(views: SecurityViews, capacity: usize) -> Self {
        CachedLabeler {
            inner: BitVectorLabeler::new(views),
            query_cache: RwLock::new(HashMap::new()),
            atom_cache: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            atom_hits: AtomicU64::new(0),
            atom_misses: AtomicU64::new(0),
        }
    }

    /// The per-cache entry limit.
    pub fn capacity_limit(&self) -> usize {
        self.capacity
    }

    fn read_query_cache(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<QueryKey, DisclosureLabel>> {
        self.query_cache.read().unwrap_or_else(|e| e.into_inner())
    }

    fn read_atom_cache(&self) -> std::sync::RwLockReadGuard<'_, HashMap<AtomKey, ViewMask>> {
        self.atom_cache.read().unwrap_or_else(|e| e.into_inner())
    }

    /// `ℓ⁺` of one dissected single-atom query, through the atom cache.
    fn cached_atom_mask(&self, atom_query: &ConjunctiveQuery) -> ViewMask {
        let key = atom_key(atom_query).expect("dissected parts are single-atom");
        if let Some(mask) = self.read_atom_cache().get(&key) {
            self.atom_hits.fetch_add(1, Ordering::Relaxed);
            return *mask;
        }
        let mask = self.inner.atom_mask(atom_query);
        self.atom_misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.atom_cache.write().unwrap_or_else(|e| e.into_inner());
        if cache.len() < self.capacity {
            cache.insert(key, mask);
        }
        mask
    }

    /// Current hit/miss counters and cache sizes.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.read_query_cache().len(),
            atom_hits: self.atom_hits.load(Ordering::Relaxed),
            atom_misses: self.atom_misses.load(Ordering::Relaxed),
            atom_entries: self.read_atom_cache().len(),
        }
    }

    /// Drops every cached entry and resets the counters (e.g. after the
    /// security-view registry of a live system is rebuilt).
    pub fn clear(&self) {
        self.query_cache
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.atom_cache
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.atom_hits.store(0, Ordering::Relaxed);
        self.atom_misses.store(0, Ordering::Relaxed);
    }

    /// Labels a batch in parallel and folds the results into the cumulative
    /// disclosure label, using all available cores.
    ///
    /// Equivalent to [`QueryLabeler::label_queries`] (asserted by the test
    /// suite) but shards the batch across scoped worker threads that share
    /// this labeler's cache.
    pub fn label_queries_batch(&self, queries: &[ConjunctiveQuery]) -> DisclosureLabel {
        label_queries_parallel(self, queries, available_threads())
    }

    /// Labels each query of a batch in parallel, preserving order.
    ///
    /// The per-query counterpart of
    /// [`label_queries_batch`](Self::label_queries_batch) for callers that
    /// need individual labels (e.g. to feed a policy store).
    pub fn label_batch(&self, queries: &[ConjunctiveQuery]) -> Vec<DisclosureLabel> {
        let per_chunk: Vec<Vec<DisclosureLabel>> =
            map_chunks_parallel(queries, available_threads(), |chunk| {
                chunk.iter().map(|q| self.label_query(q)).collect()
            });
        per_chunk.into_iter().flatten().collect()
    }

    /// Labels one query and returns the packed 64-bit representation
    /// (Section 6.1) — the form the policy stores consume directly via
    /// `submit_packed`, so a cache hit plus a pack is the whole labeling
    /// stage of the admission path.
    pub fn label_packed(&self, query: &ConjunctiveQuery) -> Vec<PackedLabel> {
        self.label_query(query).pack()
    }

    /// Labels each query of a batch in parallel, preserving order, and
    /// returns the packed representation of every label.
    ///
    /// The packed counterpart of [`label_batch`](Self::label_batch) for
    /// callers that feed a policy store (see
    /// `fdc_policy::AdmissionPipeline`): the labels never leave the 64-bit
    /// form between the labeling and enforcement stages.
    pub fn label_batch_packed(&self, queries: &[ConjunctiveQuery]) -> Vec<Vec<PackedLabel>> {
        let per_chunk: Vec<Vec<Vec<PackedLabel>>> =
            map_chunks_parallel(queries, available_threads(), |chunk| {
                chunk.iter().map(|q| self.label_packed(q)).collect()
            });
        per_chunk.into_iter().flatten().collect()
    }
}

impl QueryLabeler for CachedLabeler {
    fn label_query(&self, query: &ConjunctiveQuery) -> DisclosureLabel {
        let key = query_key(query);
        if let Some(label) = self.read_query_cache().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return label.clone();
        }
        let mut label = DisclosureLabel::bottom();
        for atom_query in dissect(query) {
            let relation = atom_query.atoms()[0].relation;
            let mask = self.cached_atom_mask(&atom_query);
            label.push(AtomLabel::new(relation, mask));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.query_cache.write().unwrap_or_else(|e| e.into_inner());
        if cache.len() < self.capacity {
            cache.insert(key, label.clone());
        }
        drop(cache);
        label
    }

    fn security_views(&self) -> &SecurityViews {
        self.inner.security_views()
    }
}

/// Number of worker threads for batch labeling: the machine's available
/// parallelism, with a serial fallback when it cannot be determined.
fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Labels a batch of queries in parallel with any thread-safe labeler and
/// folds the per-query labels into the cumulative disclosure label of the
/// whole batch (the label of answering every query).
///
/// The batch is sharded into `threads` contiguous chunks, each labeled on a
/// scoped worker thread with the plain sequential
/// [`label_queries`](QueryLabeler::label_queries), and the partial labels
/// are folded with [`DisclosureLabel::combine_in_place`].  Folding is
/// order-insensitive (the label lattice LUB is associative and commutative),
/// so the result equals the sequential one; the test suite asserts this.
pub fn label_queries_parallel<L>(
    labeler: &L,
    queries: &[ConjunctiveQuery],
    threads: usize,
) -> DisclosureLabel
where
    L: QueryLabeler + Sync,
{
    let partials = map_chunks_parallel(queries, threads, |chunk| labeler.label_queries(chunk));
    let mut out = DisclosureLabel::bottom();
    for partial in &partials {
        out.combine_in_place(partial);
    }
    out
}

/// Splits `queries` into up to `threads` contiguous chunks and maps `f`
/// over them on scoped worker threads, returning the per-chunk results in
/// chunk order.  One chunk (or an empty input) runs on the calling thread.
fn map_chunks_parallel<T, F>(queries: &[ConjunctiveQuery], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&[ConjunctiveQuery]) -> T + Sync,
{
    if queries.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, queries.len());
    if threads <= 1 {
        return vec![f(queries)];
    }
    let chunk = queries.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|ck| scope.spawn(move || f(ck)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("labeler worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::{parser::parse_query, Catalog};

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    fn paper_labelers() -> (
        Catalog,
        BaselineLabeler,
        HashPartitionedLabeler,
        BitVectorLabeler,
    ) {
        let registry = SecurityViews::paper_example();
        let catalog = registry.catalog().clone();
        (
            catalog,
            BaselineLabeler::new(registry.clone()),
            HashPartitionedLabeler::new(registry.clone()),
            BitVectorLabeler::new(registry),
        )
    }

    #[test]
    fn figure_1_label_of_q1_is_v1() {
        let (c, baseline, _, _) = paper_labelers();
        let q1 = q(&c, "Q1(x) :- Meetings(x, 'Cathy')");
        let label = baseline.label_query(&q1);
        let registry = baseline.security_views();
        let described = label.describe(registry);
        assert!(described.contains("V1"));
        assert!(!described.contains("V2"));
        assert!(!described.contains("V3"));
        assert_eq!(label.len(), 1);
    }

    #[test]
    fn figure_1_label_of_q2_is_v1_and_v3() {
        let (c, baseline, _, _) = paper_labelers();
        let q2 = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let label = baseline.label_query(&q2);
        let described = label.describe(baseline.security_views());
        assert!(described.contains("V1"));
        assert!(described.contains("V3"));
        assert_eq!(label.len(), 2);
        assert!(!label.contains_top());
    }

    #[test]
    fn time_only_queries_label_to_v2_or_v1() {
        let (c, baseline, _, _) = paper_labelers();
        // The time-column projection is answerable by both V1 and V2, so its
        // ℓ⁺ has two bits set; it is *below* the V1-only label.
        let times = q(&c, "Q(x) :- Meetings(x, y)");
        let label = baseline.label_query(&times);
        assert_eq!(label.len(), 1);
        assert_eq!(label.atoms()[0].view_count(), 2);

        let full = baseline.label_query(&q(&c, "Q(x, y) :- Meetings(x, y)"));
        assert!(label.leq(&full));
        assert!(!full.leq(&label));
    }

    #[test]
    fn all_three_labelers_agree_on_paper_queries() {
        let (c, baseline, hashed, bitvec) = paper_labelers();
        let queries = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q(p) :- Contacts(p, e, 'Manager'), Meetings(t, p)",
            "Q() :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
        ];
        for text in queries {
            let query = q(&c, text);
            let a = baseline.label_query(&query);
            let b = hashed.label_query(&query);
            let v = bitvec.label_query(&query);
            assert_eq!(a, b, "baseline vs hashed disagree on {text}");
            assert_eq!(a, v, "baseline vs bitvec disagree on {text}");
        }
    }

    #[test]
    fn unanswerable_atoms_get_top_labels() {
        // Remove V3 so Contacts queries become unanswerable.
        let catalog = Catalog::paper_example();
        let mut registry = SecurityViews::new(&catalog);
        registry
            .add_program("V1(x, y) :- Meetings(x, y)\nV2(x) :- Meetings(x, y)")
            .unwrap();
        let labeler = BitVectorLabeler::new(registry);
        let query = q(&catalog, "Q(x) :- Contacts(x, y, z)");
        let label = labeler.label_query(&query);
        assert!(label.contains_top());
        assert!(label
            .describe(labeler.security_views())
            .contains("no security view answers"));
    }

    #[test]
    fn label_queries_accumulates_across_a_history() {
        let (c, _, hashed, _) = paper_labelers();
        let history = vec![
            q(&c, "Q(x) :- Meetings(x, y)"),
            q(&c, "Q(x, y, z) :- Contacts(x, y, z)"),
        ];
        let cumulative = hashed.label_queries(&history);
        assert_eq!(cumulative.len(), 2);
        // Each individual label is below the cumulative one.
        for single in &history {
            assert!(hashed.label_query(single).leq(&cumulative));
        }
        // The empty history labels to ⊥.
        assert!(hashed.label_queries(&[]).is_bottom());
    }

    #[test]
    fn packed_labels_match_unpacked_ones() {
        let (c, _, _, bitvec) = paper_labelers();
        let query = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let packed = bitvec.label_packed(&query);
        let unpacked = bitvec.label_query(&query);
        assert_eq!(packed.len(), unpacked.len());
        for (p, a) in packed.iter().zip(unpacked.atoms()) {
            assert_eq!(p.relation(), a.relation);
            assert_eq!(p.mask() as u64, a.mask);
        }
    }

    #[test]
    fn constants_and_self_joins_use_the_general_fallback() {
        // Register a selection view (not projection-style) and check the
        // bit-vector labeler still gets it right via the fallback path.
        let catalog = Catalog::paper_example();
        let mut registry = SecurityViews::new(&catalog);
        registry
            .add_program(
                r"
                Vc(x)    :- Meetings(x, 'Cathy')
                Vd(x)    :- Meetings(x, x)
                V1(x, y) :- Meetings(x, y)
                ",
            )
            .unwrap();
        let baseline = BaselineLabeler::new(registry.clone());
        let bitvec = BitVectorLabeler::new(registry);

        for text in [
            "Q(x) :- Meetings(x, 'Cathy')",
            "Q() :- Meetings(x, 'Cathy')",
            "Q(x) :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y)",
        ] {
            let query = q(&catalog, text);
            assert_eq!(
                baseline.label_query(&query),
                bitvec.label_query(&query),
                "disagreement on {text}"
            );
        }
    }

    #[test]
    fn cached_labeler_agrees_with_the_other_variants() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let queries = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q() :- Meetings(x, x)",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
            "Q(p) :- Contacts(p, e, 'Manager'), Meetings(t, p)",
        ];
        for text in queries {
            let query = q(&c, text);
            assert_eq!(
                baseline.label_query(&query),
                cached.label_query(&query),
                "baseline vs cached disagree on {text}"
            );
        }
        // A second pass over the same queries is answered from the cache.
        let before = cached.stats();
        for text in queries {
            cached.label_query(&q(&c, text));
        }
        let after = cached.stats();
        assert_eq!(after.misses, before.misses, "second pass must not miss");
        assert!(after.hits > before.hits);
        assert!(after.hit_rate() > 0.0);
    }

    #[test]
    fn cache_hits_on_alpha_renamed_queries() {
        let (c, _, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        cached.label_query(&q(&c, "Q(x) :- Meetings(x, y)"));
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        // Different variable names, same canonical form: a pure hit.
        cached.label_query(&q(&c, "Q(a) :- Meetings(a, b)"));
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        // Clearing empties the memo table.
        cached.clear();
        assert_eq!(cached.stats(), CacheStats::default());
    }

    #[test]
    fn cache_capacity_bounds_both_tables() {
        let (c, baseline, _, _) = paper_labelers();
        let tiny = CachedLabeler::with_capacity_limit(SecurityViews::paper_example(), 2);
        assert_eq!(tiny.capacity_limit(), 2);
        let texts = [
            "Q(x) :- Meetings(x, y)",
            "Q(x, y) :- Meetings(x, y)",
            "Q(y) :- Meetings(x, y)",
            "Q() :- Meetings(x, y)",
            "Q(x) :- Meetings(x, 'Cathy')",
        ];
        for text in texts {
            let query = q(&c, text);
            // Labels stay correct even once the tables are full.
            assert_eq!(tiny.label_query(&query), baseline.label_query(&query));
        }
        let stats = tiny.stats();
        assert!(
            stats.entries <= 2,
            "query cache exceeded its cap: {stats:?}"
        );
        assert!(
            stats.atom_entries <= 2,
            "atom cache exceeded its cap: {stats:?}"
        );
        // Over-limit shapes are recomputed (a miss), never admitted.
        let before = tiny.stats();
        tiny.label_query(&q(&c, "Q(x) :- Meetings(x, 'Cathy')"));
        let after = tiny.stats();
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.entries, before.entries);
        // The default constructor uses the documented limit.
        let default = CachedLabeler::new(SecurityViews::paper_example());
        assert_eq!(default.capacity_limit(), DEFAULT_CACHE_CAPACITY);
    }

    #[test]
    fn cloning_keeps_entries_but_resets_counters() {
        let (c, _, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        cached.label_query(&q(&c, "Q(x) :- Meetings(x, y)"));
        let snapshot = cached.clone();
        assert_eq!(snapshot.stats().entries, 1);
        assert_eq!(snapshot.stats().misses, 0);
        // The snapshot answers the warmed shape without a miss.
        snapshot.label_query(&q(&c, "Q(z) :- Meetings(z, w)"));
        assert_eq!(snapshot.stats().misses, 0);
        assert_eq!(snapshot.stats().hits, 1);
    }

    #[test]
    fn parallel_batch_labeling_matches_sequential() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let texts = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q() :- Meetings(x, x)",
        ];
        let queries: Vec<ConjunctiveQuery> =
            (0..50).map(|i| q(&c, texts[i % texts.len()])).collect();
        let sequential = baseline.label_queries(&queries);
        assert_eq!(cached.label_queries_batch(&queries), sequential);
        // The generic parallel helper agrees for every labeler and any
        // thread count, including degenerate ones.
        for threads in [1, 2, 3, 64] {
            assert_eq!(
                label_queries_parallel(&baseline, &queries, threads),
                sequential
            );
            assert_eq!(
                label_queries_parallel(&cached, &queries, threads),
                sequential
            );
        }
        assert!(label_queries_parallel(&cached, &[], 4).is_bottom());
    }

    #[test]
    fn parallel_per_query_labels_preserve_order() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let queries: Vec<ConjunctiveQuery> = (0..17)
            .map(|i| {
                if i % 2 == 0 {
                    q(&c, "Q(x) :- Meetings(x, y)")
                } else {
                    q(&c, "Q(x, y, z) :- Contacts(x, y, z)")
                }
            })
            .collect();
        let expected: Vec<DisclosureLabel> = queries
            .iter()
            .map(|query| baseline.label_query(query))
            .collect();
        assert_eq!(cached.label_batch(&queries), expected);
        assert!(cached.label_batch(&[]).is_empty());
    }

    #[test]
    fn packed_batch_labels_match_per_query_packing() {
        let (c, baseline, _, _) = paper_labelers();
        let cached = CachedLabeler::new(SecurityViews::paper_example());
        let queries: Vec<ConjunctiveQuery> = [
            "Q(x) :- Meetings(x, y)",
            "Q(x, y, z) :- Contacts(x, y, z)",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
        ]
        .iter()
        .cycle()
        .take(20)
        .map(|t| q(&c, t))
        .collect();
        let expected: Vec<Vec<PackedLabel>> = queries
            .iter()
            .map(|query| baseline.label_query(query).pack())
            .collect();
        assert_eq!(cached.label_batch_packed(&queries), expected);
        assert_eq!(cached.label_packed(&queries[0]), expected[0]);
        assert!(cached.label_batch_packed(&[]).is_empty());
    }

    #[test]
    fn projection_shape_analysis() {
        let c = Catalog::paper_example();
        assert_eq!(
            projection_shape(&q(&c, "V(x, y) :- Meetings(x, y)")),
            Some(0b11)
        );
        assert_eq!(
            projection_shape(&q(&c, "V(x) :- Meetings(x, y)")),
            Some(0b01)
        );
        assert_eq!(
            projection_shape(&q(&c, "V(y) :- Meetings(x, y)")),
            Some(0b10)
        );
        assert_eq!(projection_shape(&q(&c, "V() :- Meetings(x, y)")), Some(0));
        assert_eq!(
            projection_shape(&q(&c, "V(x) :- Meetings(x, 'Cathy')")),
            None
        );
        assert_eq!(projection_shape(&q(&c, "V(x) :- Meetings(x, x)")), None);
    }
}
