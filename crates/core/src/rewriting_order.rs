//! The equivalent-view-rewriting disclosure order over a finite universe of
//! registered security views, as an [`fdc_order::DisclosureOrder`].
//!
//! The production labelers never materialize a disclosure lattice, but the
//! abstract machinery of `fdc-order` (explicit lattices, labeler-existence
//! checks, lattice-cut policies) needs a concrete order to work with.
//! [`RewritingOrder`] provides it: the universe is the set of views in a
//! [`SecurityViews`] registry, and `W1 ⪯ W2` holds when every view of `W1`
//! has an equivalent rewriting in terms of the views of `W2`.
//!
//! Because security views are single-atom, rewritability from a set reduces
//! to rewritability from one of its members (see
//! [`fdc_cq::rewriting`]), which also makes the universe *decomposable* in
//! the sense of Definition 4.7 — the property that justifies the
//! generating-set labeling of Section 4.2.

use fdc_cq::rewriting::rewritable_from_single;
use fdc_order::{DisclosureOrder, ViewId, ViewSet};

use crate::security_views::{SecurityViewId, SecurityViews};

/// The rewriting order over the views of a [`SecurityViews`] registry.
///
/// Pairwise rewritability between the registered views is precomputed, so
/// `leq` is a pure bit-set computation.
#[derive(Debug, Clone)]
pub struct RewritingOrder {
    /// `derivable[i]` = bit set of views from which view `i` is rewritable
    /// (always includes `i` itself).
    derivable_from: Vec<ViewSet>,
}

impl RewritingOrder {
    /// Builds the order for a registry.
    ///
    /// # Panics
    ///
    /// Panics if the registry has more than 64 views (the abstract lattice
    /// machinery is meant for small universes; the production labelers have
    /// no such limit).
    pub fn new(registry: &SecurityViews) -> Self {
        let n = registry.len();
        assert!(
            n <= fdc_order::view::MAX_UNIVERSE,
            "RewritingOrder supports at most {} views",
            fdc_order::view::MAX_UNIVERSE
        );
        let mut derivable_from = vec![ViewSet::new(); n];
        for (i, (_, target)) in registry.iter().enumerate() {
            for (j, (_, source)) in registry.iter().enumerate() {
                if rewritable_from_single(&target.query, &source.query) {
                    derivable_from[i].insert(ViewId(j as u32));
                }
            }
        }
        RewritingOrder { derivable_from }
    }

    /// Converts a registry view id into an order-level view id.
    pub fn view_id(&self, id: SecurityViewId) -> ViewId {
        ViewId(id.0)
    }

    /// Converts a set of registry ids into an order-level [`ViewSet`].
    pub fn view_set<I: IntoIterator<Item = SecurityViewId>>(&self, ids: I) -> ViewSet {
        ids.into_iter().map(|id| ViewId(id.0)).collect()
    }
}

impl DisclosureOrder for RewritingOrder {
    fn universe_size(&self) -> usize {
        self.derivable_from.len()
    }

    fn leq(&self, w1: ViewSet, w2: ViewSet) -> bool {
        w1.iter()
            .all(|v| !self.derivable_from[v.index()].intersection(w2).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::Catalog;
    use fdc_order::{
        downset::downset, lattice::DisclosureLattice, order::check_disclosure_order_axioms,
    };

    /// Registry holding the four Meetings views of Figure 3.
    fn figure3_registry() -> SecurityViews {
        let catalog = Catalog::paper_example();
        let mut views = SecurityViews::new(&catalog);
        views
            .add_program(
                r"
                V1(x, y) :- Meetings(x, y)
                V2(x)    :- Meetings(x, y)
                V4(y)    :- Meetings(x, y)
                V5()     :- Meetings(x, y)
                ",
            )
            .unwrap();
        views
    }

    #[test]
    fn rewriting_order_satisfies_the_disclosure_order_axioms() {
        let registry = figure3_registry();
        let order = RewritingOrder::new(&registry);
        assert_eq!(order.universe_size(), 4);
        check_disclosure_order_axioms(&order).unwrap();
    }

    #[test]
    fn figure_3_lattice_emerges_from_the_rewriting_order() {
        let registry = figure3_registry();
        let order = RewritingOrder::new(&registry);
        let lattice = DisclosureLattice::build(&order);
        assert_eq!(lattice.len(), 6);

        let id = |name: &str| order.view_id(registry.id_by_name(name).unwrap());
        let v2 = ViewSet::singleton(id("V2"));
        let v4 = ViewSet::singleton(id("V4"));
        let v5 = ViewSet::singleton(id("V5"));
        let v1 = ViewSet::singleton(id("V1"));

        // GLB(⇓{V2}, ⇓{V4}) = ⇓{V5}; LUB is strictly below ⊤.
        let e2 = lattice.classify(&order, v2);
        let e4 = lattice.classify(&order, v4);
        let e5 = lattice.classify(&order, v5);
        assert_eq!(lattice.glb(e2, e4), e5);
        let lub = lattice.lub(&order, e2, e4);
        assert_ne!(lub, lattice.top());
        assert_eq!(lattice.classify(&order, v1), lattice.top());
    }

    #[test]
    fn the_universe_is_decomposable() {
        let registry = figure3_registry();
        let order = RewritingOrder::new(&registry);
        assert!(fdc_order::genset::is_decomposable(&order));
        // ... and therefore the lattice is distributive (Theorem 4.8).
        let lattice = DisclosureLattice::build(&order);
        assert!(lattice.is_distributive(&order));
    }

    #[test]
    fn downsets_match_direct_rewriting_checks() {
        let registry = figure3_registry();
        let order = RewritingOrder::new(&registry);
        let v1 = order.view_set([registry.id_by_name("V1").unwrap()]);
        let d = downset(&order, v1);
        // Everything is derivable from the full Meetings view.
        assert_eq!(d, ViewSet::full(4));
        let v5 = order.view_set([registry.id_by_name("V5").unwrap()]);
        assert_eq!(downset(&order, v5).len(), 1);
    }

    #[test]
    fn view_set_conversion_round_trips() {
        let registry = figure3_registry();
        let order = RewritingOrder::new(&registry);
        let ids: Vec<SecurityViewId> = registry.iter().map(|(id, _)| id).collect();
        let set = order.view_set(ids.clone());
        assert_eq!(set.len(), ids.len());
        for id in ids {
            assert!(set.contains(order.view_id(id)));
        }
    }
}
