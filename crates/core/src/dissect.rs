//! The `Dissect` algorithm of Section 5.2.
//!
//! Security views are single-atom, so multi-atom queries are labeled in two
//! steps: `Dissect` first converts a conjunctive query into a set of
//! single-atom queries, then the single-atom machinery labels each one.
//!
//! `Dissect`:
//!
//! 1. computes a **folding** of the query (removes redundant atoms — see
//!    [`fdc_cq::folding`]);
//! 2. splits the folding into its constituent atoms;
//! 3. **promotes to distinguished** every existential variable that appears
//!    in at least two atoms: any set of single-atom views that allows the
//!    join to be computed must reveal the values of the join attributes.
//!
//! The composition of `Dissect` with the single-atom labeler is itself a
//! disclosure labeler (end of Section 5.2).

use fdc_cq::folding::fold;
use fdc_cq::intern::{ITerm, QueryId, QueryInterner};
use fdc_cq::{Atom, ConjunctiveQuery, RelId, Term, VarId, VarKind};

/// Dissects a conjunctive query into single-atom queries.
///
/// The result contains one single-atom query per atom of the folded input,
/// with join variables promoted to distinguished.  Variable ids are
/// compacted per output atom, but names are carried over from the input to
/// keep labels explainable.
pub fn dissect(query: &ConjunctiveQuery) -> Vec<ConjunctiveQuery> {
    let folded = fold(query);
    if folded.num_atoms() == 1 {
        return vec![single_atom_query(&folded, &folded.atoms()[0], &[])];
    }

    // Count in how many atoms each variable occurs; existential variables
    // occurring in ≥ 2 atoms become distinguished.
    let counts = folded.atoms_per_variable();
    let promoted: Vec<VarId> = (0..folded.num_vars() as u32)
        .map(VarId)
        .filter(|v| folded.var_kind(*v).is_existential() && counts[v.index()] >= 2)
        .collect();

    folded
        .atoms()
        .iter()
        .map(|atom| single_atom_query(&folded, atom, &promoted))
        .collect()
}

/// Extracts one atom of `source` as a standalone single-atom query,
/// promoting the listed variables to distinguished.
fn single_atom_query(
    source: &ConjunctiveQuery,
    atom: &Atom,
    promoted: &[VarId],
) -> ConjunctiveQuery {
    let mut var_kinds: Vec<VarKind> = Vec::new();
    let mut var_names: Vec<String> = Vec::new();
    let mut mapping: std::collections::HashMap<VarId, VarId> = std::collections::HashMap::new();

    let terms: Vec<Term> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v, _) => {
                let kind = if promoted.contains(v) {
                    VarKind::Distinguished
                } else {
                    source.var_kind(*v)
                };
                let next = VarId(mapping.len() as u32);
                let new_id = *mapping.entry(*v).or_insert_with(|| {
                    var_kinds.push(kind);
                    var_names.push(source.var_name(*v).to_owned());
                    next
                });
                Term::Var(new_id, var_kinds[new_id.index()])
            }
            Term::Const(c) => Term::Const(c.clone()),
        })
        .collect();

    ConjunctiveQuery::from_parts(vec![Atom::new(atom.relation, terms)], var_kinds, var_names)
        .expect("a single atom extracted from a valid query is valid")
}

/// [`dissect`] over the interned query plane: dissects interned query `id`
/// and **interns every resulting single-atom query**, returning their dense
/// ids (with the part's base relation alongside, so callers need not resolve
/// again just to route by relation).
///
/// Runs the same pipeline as [`dissect`] — fold, split, promote join
/// variables — but entirely on the flat [`QueryRef`](fdc_cq::QueryRef)
/// representation, so no boxed query is materialized.  Because interning is
/// canonical, recurring atoms (the `Friend` join atoms the Section 7.2
/// workload attaches to every friends-audience query) dissect to the *same*
/// atom ids across query shapes, which is what lets the labeler's atom-level
/// cache collapse to a plain indexed table.
///
/// The output parts are structurally identical (up to variable renaming) to
/// those of [`dissect`] on the equivalent boxed query; the property tests
/// assert the resulting labels agree.
pub fn dissect_interned(interner: &mut QueryInterner, id: QueryId) -> Vec<(QueryId, RelId)> {
    // The fold comes from the interner's structural side table: it is
    // computed (and memoized) on the first dissection of each shape, so
    // re-dissections replay the core instead of re-running the NP-hard
    // search.
    let kept_indices: Vec<u32> = interner.core_atom_indices(id).to_vec();
    // Phase 1 (read-only): assemble each part's flat terms/kinds into owned
    // scratch buffers.
    let parts: Vec<(RelId, Vec<ITerm>, Vec<VarKind>)> = {
        let query = interner.resolve(id);
        let kept: Vec<fdc_cq::intern::IAtom> = kept_indices
            .iter()
            .map(|&i| query.atoms[i as usize])
            .collect();
        let num_vars = query.num_vars();

        // Existential variables occurring in ≥ 2 surviving atoms become
        // distinguished.
        let mut promoted = vec![false; num_vars];
        if kept.len() > 1 {
            let mut counts = vec![0u32; num_vars];
            let mut seen = vec![false; num_vars];
            for atom in &kept {
                seen.iter_mut().for_each(|s| *s = false);
                for term in atom.terms(query.terms) {
                    if let Some(v) = term.var_index() {
                        if !seen[v as usize] {
                            seen[v as usize] = true;
                            counts[v as usize] += 1;
                        }
                    }
                }
            }
            for v in 0..num_vars {
                promoted[v] = query.kinds[v].is_existential() && counts[v] >= 2;
            }
        }

        kept.iter()
            .map(|atom| {
                const UNMAPPED: u32 = u32::MAX;
                let mut mapping = vec![UNMAPPED; num_vars];
                let mut kinds: Vec<VarKind> = Vec::new();
                let terms: Vec<ITerm> = atom
                    .terms(query.terms)
                    .iter()
                    .map(|term| match *term {
                        ITerm::Var(v, _) => {
                            let kind = if promoted[v as usize] {
                                VarKind::Distinguished
                            } else {
                                query.kinds[v as usize]
                            };
                            let slot = &mut mapping[v as usize];
                            if *slot == UNMAPPED {
                                *slot = kinds.len() as u32;
                                kinds.push(kind);
                            }
                            ITerm::Var(*slot, kind)
                        }
                        ITerm::Const(c) => ITerm::Const(c),
                    })
                    .collect();
                (atom.relation, terms, kinds)
            })
            .collect()
    };
    // Phase 2 (mutating): intern each part.
    parts
        .into_iter()
        .map(|(relation, terms, kinds)| {
            (
                interner.intern_single_atom(relation, &terms, &kinds),
                relation,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdc_cq::{parser::parse_query, Catalog};

    fn catalog() -> Catalog {
        Catalog::paper_example()
    }

    fn q(c: &Catalog, s: &str) -> ConjunctiveQuery {
        parse_query(c, s).unwrap()
    }

    #[test]
    fn example_5_4_join_variables_are_promoted() {
        // Q2(x) :- M(x, y), C(y, w, 'Intern')  dissects to
        // [M(xd, yd)] and [C(yd, we, 'Intern')].
        let c = catalog();
        let q2 = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let parts = dissect(&q2);
        assert_eq!(parts.len(), 2);

        let expected_m = q(&c, "P(x, y) :- Meetings(x, y)");
        let expected_c = q(&c, "P(y) :- Contacts(y, w, 'Intern')");
        assert!(fdc_cq::containment::equivalent(&parts[0], &expected_m));
        assert!(fdc_cq::containment::equivalent(&parts[1], &expected_c));
    }

    #[test]
    fn single_atom_queries_pass_through() {
        let c = catalog();
        let q1 = q(&c, "Q1(x) :- Meetings(x, 'Cathy')");
        let parts = dissect(&q1);
        assert_eq!(parts.len(), 1);
        assert!(fdc_cq::containment::equivalent(&parts[0], &q1));
    }

    #[test]
    fn redundant_atoms_are_folded_before_splitting() {
        let c = catalog();
        let redundant = q(&c, "Q(x) :- Meetings(x, y), Meetings(x, z)");
        let parts = dissect(&redundant);
        assert_eq!(parts.len(), 1);
        let expected = q(&c, "P(x) :- Meetings(x, y)");
        assert!(fdc_cq::containment::equivalent(&parts[0], &expected));
    }

    #[test]
    fn non_join_existentials_stay_existential() {
        let c = catalog();
        // w appears only in the Contacts atom, so it stays existential; y is
        // the join variable and is promoted.
        let q2 = q(&c, "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let parts = dissect(&q2);
        let contacts_part = &parts[1];
        let dist: Vec<&str> = contacts_part
            .distinguished_vars()
            .map(|v| contacts_part.var_name(v))
            .collect();
        assert_eq!(dist, vec!["y"]);
        let exist: Vec<&str> = contacts_part
            .existential_vars()
            .map(|v| contacts_part.var_name(v))
            .collect();
        assert_eq!(exist, vec!["w"]);
    }

    #[test]
    fn already_distinguished_join_variables_are_unchanged() {
        let c = catalog();
        let qd = q(&c, "Q(x, y) :- Meetings(x, y), Contacts(y, w, 'Intern')");
        let parts = dissect(&qd);
        assert_eq!(parts.len(), 2);
        let expected_m = q(&c, "P(x, y) :- Meetings(x, y)");
        assert!(fdc_cq::containment::equivalent(&parts[0], &expected_m));
    }

    #[test]
    fn three_way_joins_promote_every_join_variable() {
        let c = catalog();
        // y joins atoms 1-2, w joins atoms 2-3.
        let q3 = q(
            &c,
            "Q(x) :- Meetings(x, y), Contacts(y, w, p), Meetings(w, z)",
        );
        let parts = dissect(&q3);
        assert_eq!(parts.len(), 3);
        // The middle atom exposes both join variables but not p.
        let middle = &parts[1];
        let dist: Vec<&str> = middle
            .distinguished_vars()
            .map(|v| middle.var_name(v))
            .collect();
        assert_eq!(dist, vec!["y", "w"]);
    }

    #[test]
    fn constants_are_preserved_verbatim() {
        let c = catalog();
        let qc = q(
            &c,
            "Q(x) :- Meetings(x, y), Contacts(y, 'a@b.com', 'Intern')",
        );
        let parts = dissect(&qc);
        assert!(parts[1].atoms()[0].has_constants());
        assert_eq!(parts[1].atoms()[0].terms.len(), 3);
    }

    #[test]
    fn dissection_output_is_always_single_atom() {
        let c = catalog();
        let inputs = [
            "Q(x) :- Meetings(x, y)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q() :- Meetings(x, y), Meetings(y, z), Contacts(z, w, p)",
            "Q(x) :- Meetings(x, x), Meetings(x, y)",
        ];
        for text in inputs {
            for part in dissect(&q(&c, text)) {
                assert!(
                    part.is_single_atom(),
                    "dissect({text}) produced a multi-atom part"
                );
            }
        }
    }

    #[test]
    fn interned_dissection_matches_boxed_dissection() {
        let c = catalog();
        let mut interner = QueryInterner::new();
        let inputs = [
            "Q1(x) :- Meetings(x, 'Cathy')",
            "Q2(x) :- Meetings(x, y), Contacts(y, w, 'Intern')",
            "Q(x) :- Meetings(x, y), Meetings(x, z)",
            "Q(x, z) :- Meetings(x, y), Meetings(y, z)",
            "Q(x) :- Meetings(x, y), Contacts(y, w, p), Meetings(w, z)",
            "Q() :- Meetings(x, y), Meetings(y, z), Contacts(z, w, p)",
            "Q(x) :- Meetings(x, x), Meetings(x, y)",
        ];
        for text in inputs {
            let query = q(&c, text);
            let boxed = dissect(&query);
            let id = interner.intern(&query);
            let interned = dissect_interned(&mut interner, id);
            assert_eq!(boxed.len(), interned.len(), "part count differs on {text}");
            for (part, (part_id, relation)) in boxed.iter().zip(&interned) {
                let back = interner.to_query(*part_id);
                assert_eq!(part.atoms()[0].relation, *relation, "relation on {text}");
                assert!(
                    fdc_cq::canonical::structurally_identical(part, &back),
                    "part differs on {text}: {part:?} vs {back:?}"
                );
            }
            // Dissecting again reuses the already-interned atom ids.
            let before = interner.len();
            assert_eq!(dissect_interned(&mut interner, id), interned);
            assert_eq!(interner.len(), before);
        }
    }

    #[test]
    fn self_join_on_the_same_relation_keeps_both_atoms() {
        let c = catalog();
        // Meetings(x, y) ∧ Meetings(y, z): a genuine self-join; y is the join
        // variable and must be promoted in both parts.
        let qs = q(&c, "Q(x, z) :- Meetings(x, y), Meetings(y, z)");
        let parts = dissect(&qs);
        assert_eq!(parts.len(), 2);
        for part in &parts {
            let names: Vec<&str> = part
                .distinguished_vars()
                .map(|v| part.var_name(v))
                .collect();
            assert!(
                names.contains(&"y"),
                "join variable y must be distinguished"
            );
        }
    }
}
