//! The persistent thread-per-core worker runtime.
//!
//! Every parallel batch entry point of the system used to fork scoped
//! worker threads per batch (`std::thread::scope` in
//! [`map_chunks_parallel`](crate::map_chunks_parallel), the policy store's
//! per-shard workers, the pipelined executor's segment labelers).  Spawning
//! an OS thread costs tens of microseconds — more than labeling an entire
//! warm segment — so the fork/join machinery could never win on real
//! hardware.  A [`WorkerPool`] replaces it with **persistent workers**:
//!
//! * one long-lived worker thread per requested core, each owning a bounded
//!   task queue (`fdc-worker-{i}`);
//! * callers hand a batch over as queue pushes ([`WorkerPool::submit`] /
//!   [`WorkerPool::run`]) — single-producer, single-consumer in the common
//!   case, with **work-stealing** from the tail of sibling queues when a
//!   skewed batch leaves a worker idle;
//! * panics inside tasks are contained per task (`catch_unwind`) and
//!   re-raised on the caller's [`PendingBatch::wait`], so a poisoned task
//!   can never deadlock the pool or leak a worker;
//! * dropping the pool drains the queues, parks no new work and joins every
//!   worker thread.
//!
//! The pool also carries the **epoch plane** used for snapshot
//! reclamation: a monotone global epoch ([`WorkerPool::advance_epoch`]) and
//! one published-epoch slot per worker.  A task labeling through an epoch
//! snapshot pins the snapshot's epoch ([`WorkerContext::pin`]) for its
//! duration; a coordinator retires a superseded snapshot only once the
//! minimum published epoch ([`WorkerPool::min_published_epoch`]) has moved
//! past it — workers never observe a snapshot being drained out from under
//! them.
//!
//! Everything here is safe Rust (`fdc-core` forbids `unsafe`): queues are
//! `Mutex<VecDeque>`s, parking is a `Condvar` guarded by a generation
//! counter (no lost wakeups), and task inputs are owned (`Send + 'static`),
//! which is exactly what lets the workers outlive any single batch.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Bound of each worker's task queue.  A full queue spills the push to the
/// next worker (counted as a full-queue stall); if every queue is at
/// capacity the submitting thread runs the task itself — natural
/// backpressure instead of unbounded buffering.
pub const WORKER_QUEUE_CAPACITY: usize = 256;

/// Sentinel published by a worker that is not currently reading any epoch
/// snapshot.
const EPOCH_IDLE: u64 = u64::MAX;

/// Backing cell of [`WorkerPool::global`], hoisted to module scope so
/// [`WorkerPool::global_initialized`] can observe whether it was ever hit.
static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// A queued unit of work.  Boxed `FnOnce` receiving the executing worker's
/// context (for epoch pinning).
type Task = Box<dyn FnOnce(&WorkerContext<'_>) + Send + 'static>;

/// Parking state: a generation counter bumped on every push (so a worker
/// that scanned empty queues can detect a racing push before sleeping) and
/// the shutdown flag.
struct Idle {
    seq: u64,
    shutdown: bool,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Task>>>,
    idle: Mutex<Idle>,
    work_ready: Condvar,
    /// The epoch plane: the current global epoch and the epoch each worker
    /// is reading right now ([`EPOCH_IDLE`] when it is not).
    global_epoch: AtomicU64,
    published: Vec<AtomicU64>,
    /// Round-robin cursor distributing pushes across the queues.
    next_queue: AtomicUsize,
    tasks_run: Vec<AtomicU64>,
    tasks_inline: AtomicU64,
    steals: AtomicU64,
    queue_full_stalls: AtomicU64,
    queue_empty_stalls: AtomicU64,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // Tasks run under `catch_unwind`, so poisoning is unreachable on the
    // task path; recover defensively everywhere else too.
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// A persistent pool of thread-per-core workers with bounded queues,
/// work-stealing and an epoch-publication plane.  See the
/// [module docs](self) for the architecture.
///
/// A pool built with `workers <= 1` spawns no threads at all: every batch
/// runs inline on the submitting thread, so single-core hosts pay neither
/// thread churn nor hand-off cost.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish_non_exhaustive()
    }
}

/// Counters of a [`WorkerPool`], snapshotted by [`WorkerPool::stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Parallel width of the pool (`1` for an inline-only pool).
    pub workers: usize,
    /// Tasks executed by each worker thread, in worker order.  Empty for
    /// an inline-only pool.
    pub tasks_per_worker: Vec<u64>,
    /// Tasks the submitting thread ran itself (inline-only pools, and
    /// backpressure when every queue was at capacity).
    pub tasks_inline: u64,
    /// Tasks a worker stole from a sibling's queue tail.
    pub steals: u64,
    /// Pushes that found a worker's queue at capacity and spilled over.
    pub queue_full_stalls: u64,
    /// Times a worker found every queue empty and parked.
    pub queue_empty_stalls: u64,
}

/// The executing worker's view of the pool, passed to every task: worker
/// tasks can [`pin`](Self::pin) the epoch they are reading and learn
/// [which worker lane](Self::worker_index) they run on.
pub struct WorkerContext<'a> {
    slot: Option<&'a AtomicU64>,
    index: Option<usize>,
}

impl WorkerContext<'_> {
    /// Publishes `epoch` as the epoch this worker is currently reading,
    /// for the duration of the returned guard.  Tasks running inline on a
    /// submitting thread have no published slot (the submitter reclaims
    /// only between its own batches, so it can never race itself).
    pub fn pin(&self, epoch: u64) -> EpochPin<'_> {
        if let Some(slot) = self.slot {
            slot.store(epoch, Ordering::Release);
        }
        EpochPin { slot: self.slot }
    }

    /// The index of the pool worker executing this task, or `None` when the
    /// task runs inline on the submitting thread (inline-only pools,
    /// single-task batches and full-queue backpressure).  Snapshot readers
    /// use it to select a private per-worker overlay lane.
    pub fn worker_index(&self) -> Option<usize> {
        self.index
    }
}

/// Guard of a published epoch; dropping it returns the worker's slot to
/// idle.  See [`WorkerContext::pin`].
pub struct EpochPin<'a> {
    slot: Option<&'a AtomicU64>,
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        if let Some(slot) = self.slot {
            slot.store(EPOCH_IDLE, Ordering::Release);
        }
    }
}

/// Per-batch completion state shared between the submitter and the tasks.
struct BatchResults<R> {
    slots: Vec<Option<R>>,
    remaining: usize,
    panicked: bool,
}

struct BatchShared<R> {
    results: Mutex<BatchResults<R>>,
    done: Condvar,
}

impl<R> BatchShared<R> {
    fn complete(&self, index: usize, result: std::thread::Result<R>) {
        let mut guard = lock(&self.results);
        match result {
            Ok(value) => guard.slots[index] = Some(value),
            Err(_) => guard.panicked = true,
        }
        guard.remaining -= 1;
        if guard.remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A batch in flight on a [`WorkerPool`]: the asynchronous half of
/// [`WorkerPool::submit`].  [`wait`](Self::wait) blocks until every task
/// has completed and returns the results in input order.
#[must_use = "a pending batch does nothing until waited on"]
pub struct PendingBatch<R> {
    shared: Arc<BatchShared<R>>,
}

impl<R> PendingBatch<R> {
    /// Blocks until every task of the batch has completed and returns the
    /// results in input order.
    ///
    /// # Panics
    ///
    /// Re-raises a panic if any task of the batch panicked (the remaining
    /// tasks still ran to completion — a panicking task can never wedge
    /// the pool).
    pub fn wait(self) -> Vec<R> {
        let mut guard = lock(&self.shared.results);
        while guard.remaining > 0 {
            guard = self
                .shared
                .done
                .wait(guard)
                .unwrap_or_else(|e| e.into_inner());
        }
        if guard.panicked {
            panic!("worker pool task panicked");
        }
        std::mem::take(&mut guard.slots)
            .into_iter()
            .map(|slot| slot.expect("completed task left a result"))
            .collect()
    }
}

impl WorkerPool {
    /// Builds a pool of `workers` persistent worker threads (`workers <= 1`
    /// builds an inline-only pool with no threads at all).
    pub fn new(workers: usize) -> WorkerPool {
        let spawned = if workers <= 1 { 0 } else { workers };
        let shared = Arc::new(Shared {
            queues: (0..spawned).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(Idle {
                seq: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            global_epoch: AtomicU64::new(0),
            published: (0..spawned).map(|_| AtomicU64::new(EPOCH_IDLE)).collect(),
            next_queue: AtomicUsize::new(0),
            tasks_run: (0..spawned).map(|_| AtomicU64::new(0)).collect(),
            tasks_inline: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            queue_full_stalls: AtomicU64::new(0),
            queue_empty_stalls: AtomicU64::new(0),
        });
        let handles = (0..spawned)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fdc-worker-{me}"))
                    .spawn(move || worker_loop(&shared, me))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Builds a pool sized to the host's available parallelism.
    pub fn with_available_parallelism() -> WorkerPool {
        WorkerPool::new(std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
    }

    /// The process-wide shared pool, sized to the host's available
    /// parallelism and spawned on first use — the fallback worker plane of
    /// the *standalone* batch labeling entry points.  It lives for the
    /// life of the process (workers park when idle).
    ///
    /// Code that owns a pool (the disclosure service, the sharded store's
    /// `_on` entry points) must pass it explicitly rather than fall back
    /// here: a process should never run two pools side by side.
    /// [`global_initialized`](Self::global_initialized) lets tests assert
    /// that invariant.
    pub fn global() -> &'static WorkerPool {
        GLOBAL.get_or_init(WorkerPool::with_available_parallelism)
    }

    /// Whether [`global`](Self::global) has ever been called in this
    /// process.  The single-pool invariant test uses this to prove the
    /// service plane never silently spins up a second process-global pool
    /// next to the service-owned one.
    pub fn global_initialized() -> bool {
        GLOBAL.get().is_some()
    }

    /// Parallel width of the pool: its worker-thread count, or 1 for an
    /// inline-only pool.
    pub fn workers(&self) -> usize {
        self.handles.len().max(1)
    }

    /// Snapshots the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            tasks_per_worker: self
                .shared
                .tasks_run
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            tasks_inline: self.shared.tasks_inline.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            queue_full_stalls: self.shared.queue_full_stalls.load(Ordering::Relaxed),
            queue_empty_stalls: self.shared.queue_empty_stalls.load(Ordering::Relaxed),
        }
    }

    /// The current global epoch of the pool's reclamation plane.
    pub fn current_epoch(&self) -> u64 {
        self.shared.global_epoch.load(Ordering::Acquire)
    }

    /// Advances the global epoch and returns the new value — called by a
    /// coordinator when it installs a new snapshot generation.
    pub fn advance_epoch(&self) -> u64 {
        self.shared.global_epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The minimum epoch any worker is currently reading, or `None` when
    /// every worker is idle.  A snapshot of epoch `e` is safe to reclaim
    /// once `min_published_epoch()` either is `None` or exceeds `e`.
    pub fn min_published_epoch(&self) -> Option<u64> {
        self.shared
            .published
            .iter()
            .map(|slot| slot.load(Ordering::Acquire))
            .filter(|&epoch| epoch != EPOCH_IDLE)
            .min()
    }

    /// Submits one task per input and returns a [`PendingBatch`] that
    /// yields the results in input order.  `f` is shared across the tasks;
    /// each task receives one owned input plus the executing worker's
    /// [`WorkerContext`].
    ///
    /// Inline-only pools (and single-input batches, where hand-off cannot
    /// win) run everything on the calling thread before returning.
    pub fn submit<I, R, F>(&self, inputs: Vec<I>, f: F) -> PendingBatch<R>
    where
        I: Send + 'static,
        R: Send + 'static,
        F: Fn(I, &WorkerContext<'_>) -> R + Send + Sync + 'static,
    {
        let total = inputs.len();
        let shared = Arc::new(BatchShared {
            results: Mutex::new(BatchResults {
                slots: (0..total).map(|_| None).collect(),
                remaining: total,
                panicked: false,
            }),
            done: Condvar::new(),
        });
        if self.handles.is_empty() || total <= 1 {
            let ctx = WorkerContext {
                slot: None,
                index: None,
            };
            for (index, input) in inputs.into_iter().enumerate() {
                self.shared.tasks_inline.fetch_add(1, Ordering::Relaxed);
                shared.complete(index, catch_unwind(AssertUnwindSafe(|| f(input, &ctx))));
            }
            return PendingBatch { shared };
        }
        let f = Arc::new(f);
        for (index, input) in inputs.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let batch = Arc::clone(&shared);
            self.push(Box::new(move |ctx| {
                batch.complete(index, catch_unwind(AssertUnwindSafe(|| f(input, ctx))));
            }));
        }
        PendingBatch { shared }
    }

    /// [`submit`](Self::submit) + [`wait`](PendingBatch::wait): runs the
    /// batch to completion and returns the results in input order.
    pub fn run<I, R, F>(&self, inputs: Vec<I>, f: F) -> Vec<R>
    where
        I: Send + 'static,
        R: Send + 'static,
        F: Fn(I, &WorkerContext<'_>) -> R + Send + Sync + 'static,
    {
        self.submit(inputs, f).wait()
    }

    /// Enqueues one task: round-robin over the worker queues, spilling past
    /// full ones, running inline as backpressure when every queue is at
    /// capacity.
    fn push(&self, task: Task) {
        let queues = &self.shared.queues;
        let start = self.shared.next_queue.fetch_add(1, Ordering::Relaxed) % queues.len();
        let mut task = Some(task);
        for offset in 0..queues.len() {
            let queue = &queues[(start + offset) % queues.len()];
            let mut guard = lock(queue);
            if guard.len() < WORKER_QUEUE_CAPACITY {
                guard.push_back(task.take().expect("task pushed at most once"));
                drop(guard);
                self.signal();
                return;
            }
            drop(guard);
            self.shared
                .queue_full_stalls
                .fetch_add(1, Ordering::Relaxed);
        }
        // Every queue is at capacity: the submitter absorbs the overflow.
        self.shared.tasks_inline.fetch_add(1, Ordering::Relaxed);
        let ctx = WorkerContext {
            slot: None,
            index: None,
        };
        (task.take().expect("task pushed at most once"))(&ctx);
    }

    /// Bumps the work generation and wakes parked workers.  The bump is
    /// ordered after the queue push (both behind locks), so a worker that
    /// read the generation before scanning can never sleep through it.
    fn signal(&self) {
        {
            let mut idle = lock(&self.shared.idle);
            idle.seq = idle.seq.wrapping_add(1);
        }
        self.shared.work_ready.notify_all();
    }
}

impl Drop for WorkerPool {
    /// Shuts the pool down: workers drain every queued task, then exit;
    /// all worker threads are joined before `drop` returns.
    fn drop(&mut self) {
        {
            let mut idle = lock(&self.shared.idle);
            idle.shutdown = true;
            idle.seq = idle.seq.wrapping_add(1);
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            // A worker thread can only terminate by returning (tasks run
            // under catch_unwind), so join errors are unreachable; ignore
            // them rather than double-panicking in drop.
            let _ = handle.join();
        }
    }
}

/// Dequeues work for worker `me`: its own queue front first (FIFO), then a
/// steal from the tail of the nearest non-empty sibling.
fn find_task(shared: &Shared, me: usize) -> Option<(Task, bool)> {
    if let Some(task) = lock(&shared.queues[me]).pop_front() {
        return Some((task, false));
    }
    let n = shared.queues.len();
    for offset in 1..n {
        if let Some(task) = lock(&shared.queues[(me + offset) % n]).pop_back() {
            return Some((task, true));
        }
    }
    None
}

fn worker_loop(shared: &Shared, me: usize) {
    let ctx = WorkerContext {
        slot: Some(&shared.published[me]),
        index: Some(me),
    };
    loop {
        // Read the work generation *before* scanning: a push that lands
        // after the scan bumps the generation, which the park below
        // re-checks under the same lock — no lost wakeups.
        let seen = lock(&shared.idle).seq;
        if let Some((task, stolen)) = find_task(shared, me) {
            if stolen {
                shared.steals.fetch_add(1, Ordering::Relaxed);
            }
            shared.tasks_run[me].fetch_add(1, Ordering::Relaxed);
            task(&ctx);
            continue;
        }
        let idle = lock(&shared.idle);
        if idle.shutdown {
            drop(idle);
            // Drain anything pushed between the scan and the flag; only
            // then is the queue state final (no submitter can race a
            // `Drop` in progress — it holds the pool exclusively).
            while let Some((task, _)) = find_task(shared, me) {
                shared.tasks_run[me].fetch_add(1, Ordering::Relaxed);
                task(&ctx);
            }
            return;
        }
        if idle.seq == seen {
            shared.queue_empty_stalls.fetch_add(1, Ordering::Relaxed);
            let _unused = shared
                .work_ready
                .wait(idle)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = WorkerPool::new(4);
        let inputs: Vec<usize> = (0..500).collect();
        let doubled = pool.run(inputs, |i, _ctx| i * 2);
        assert_eq!(doubled, (0..500).map(|i| i * 2).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.workers, 4);
        let executed: u64 = stats.tasks_per_worker.iter().sum::<u64>() + stats.tasks_inline;
        assert_eq!(executed, 500);
    }

    #[test]
    fn inline_pools_spawn_no_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let caller = std::thread::current().id();
        let seen = pool.run(vec![(); 10], move |(), _ctx| std::thread::current().id());
        assert!(seen.iter().all(|id| *id == caller));
        assert_eq!(pool.stats().tasks_inline, 10);
        assert!(pool.stats().tasks_per_worker.is_empty());
    }

    #[test]
    fn single_task_batches_run_inline() {
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        let seen = pool.run(vec![()], move |(), _ctx| std::thread::current().id());
        assert_eq!(seen, vec![caller]);
    }

    #[test]
    fn empty_batches_complete_immediately() {
        let pool = WorkerPool::new(2);
        let none: Vec<u32> = Vec::new();
        assert!(pool.run(none, |i, _ctx| i).is_empty());
    }

    #[test]
    fn panicking_tasks_propagate_without_wedging_the_pool() {
        let pool = WorkerPool::new(2);
        let survived = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&survived);
        let batch = pool.submit((0..64).collect::<Vec<usize>>(), move |i, _ctx| {
            if i == 17 {
                panic!("injected task failure");
            }
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| batch.wait()));
        assert!(outcome.is_err(), "the task panic reaches the waiter");
        // Every non-panicking task still completed, and the pool still
        // serves new batches afterwards.
        assert_eq!(survived.load(Ordering::Relaxed), 63);
        assert_eq!(pool.run(vec![20, 22], |i, _ctx| i + 1), vec![21, 23]);
    }

    #[test]
    fn epoch_pins_gate_the_minimum_published_epoch() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.current_epoch(), 0);
        assert_eq!(pool.advance_epoch(), 1);
        assert_eq!(pool.min_published_epoch(), None);
        let observed = pool.run(vec![5u64, 6, 7, 8], |epoch, ctx| {
            let _pin = ctx.pin(epoch);
            epoch
        });
        assert_eq!(observed, vec![5, 6, 7, 8]);
        // Every pin is dropped once the batch completes.
        assert_eq!(pool.min_published_epoch(), None);
        assert_eq!(pool.current_epoch(), 1);
    }

    #[test]
    fn drop_joins_workers_after_draining_queued_tasks() {
        let ran = Arc::new(AtomicUsize::new(0));
        let pending = {
            let pool = WorkerPool::new(3);
            let counter = Arc::clone(&ran);
            let batch = pool.submit((0..200).collect::<Vec<usize>>(), move |_, _ctx| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            drop(pool); // shutdown drains the queues before joining
            batch
        };
        pending.wait();
        assert_eq!(ran.load(Ordering::Relaxed), 200);
    }
}
