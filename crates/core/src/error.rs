//! Error types for the labeling layer.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LabelError>;

/// Errors produced while registering security views or labeling queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelError {
    /// A security view was not a single-atom conjunctive query.
    NotSingleAtom {
        /// Name of the offending view.
        view: String,
    },
    /// A security view name was registered twice.
    DuplicateView(String),
    /// Too many security views were registered for one relation to fit the
    /// label representation in force: 64 bits for the in-memory mask
    /// ([`MAX_VIEWS_PER_RELATION`](crate::security_views::MAX_VIEWS_PER_RELATION),
    /// checked at registration) or 32 bits for the packed serving path
    /// ([`MAX_PACKED_VIEWS_PER_RELATION`](crate::security_views::MAX_PACKED_VIEWS_PER_RELATION),
    /// checked by the online-mutation surfaces so a packed mask can never
    /// silently truncate).
    TooManyViewsForRelation {
        /// Relation name.
        relation: String,
        /// Number of views that would be required.
        count: usize,
        /// The per-relation bit budget that would be exceeded.
        limit: usize,
    },
    /// A query failed validation against the catalog.
    InvalidQuery(String),
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::NotSingleAtom { view } => {
                write!(f, "security view `{view}` must have exactly one body atom")
            }
            LabelError::DuplicateView(name) => {
                write!(f, "security view `{name}` is already registered")
            }
            LabelError::TooManyViewsForRelation {
                relation,
                count,
                limit,
            } => write!(
                f,
                "relation `{relation}` would need {count} security-view bits; \
                 the label representation supports at most {limit}"
            ),
            LabelError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for LabelError {}

impl From<fdc_cq::CqError> for LabelError {
    fn from(e: fdc_cq::CqError) -> Self {
        LabelError::InvalidQuery(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LabelError::NotSingleAtom { view: "V9".into() }
            .to_string()
            .contains("V9"));
        assert!(LabelError::DuplicateView("user_likes".into())
            .to_string()
            .contains("user_likes"));
        let too_many = LabelError::TooManyViewsForRelation {
            relation: "User".into(),
            count: 99,
            limit: 64,
        }
        .to_string();
        assert!(too_many.contains("99"));
        assert!(too_many.contains("64"));
        assert!(LabelError::InvalidQuery("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn cq_errors_convert() {
        let e: LabelError = fdc_cq::CqError::EmptyBody.into();
        assert!(matches!(e, LabelError::InvalidQuery(_)));
    }
}
