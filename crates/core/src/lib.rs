//! Disclosure labelers for app ecosystems.
//!
//! This crate is the primary contribution of the reproduced paper (Bender,
//! Kot, Gehrke, Koch — *Fine-Grained Disclosure Control for App Ecosystems*,
//! SIGMOD 2013): practical algorithms that label arbitrary conjunctive
//! queries with the set of **security views** needed to answer them, under
//! the *equivalent view rewriting* disclosure order and single-atom security
//! views.
//!
//! The pipeline mirrors Sections 4–6 of the paper:
//!
//! 1. [`SecurityViews`] registers the single-atom security views (the
//!    generating set `Fgen` of Section 4.2) and assigns each a stable id and
//!    a bit position.
//! 2. [`dissect::dissect`] converts an arbitrary conjunctive query into a set
//!    of single-atom queries (Section 5.2): fold away redundant atoms, split
//!    into atoms, and promote join variables to distinguished.
//! 3. For each dissected atom, the labelers compute
//!    `ℓ⁺(V) = {Vi ∈ Fgen : {V} ⪯ {Vi}}`, the set of security views that can
//!    answer it (Section 6.1).
//! 4. The resulting [`DisclosureLabel`] supports the fast `⊇`-based
//!    comparisons used for policy enforcement in `fdc-policy`.
//!
//! Three labeler implementations are provided, matching the three curves of
//! the paper's Figure 5:
//!
//! * [`BaselineLabeler`] — a straightforward adaptation of the `LabelGen`
//!   algorithm of Section 4.2 (scans every security view for every atom);
//! * [`HashPartitionedLabeler`] — partitions the security views by relation
//!   with a hash table;
//! * [`BitVectorLabeler`] — hash partitioning plus the packed bit-vector
//!   label representation of Section 6.1.
//!
//! A fourth variant, [`CachedLabeler`], goes beyond the paper: it owns a
//! shared [`QueryInterner`](fdc_cq::intern::QueryInterner) and memoizes both
//! the whole-query and the per-atom `ℓ⁺` step by dense interned
//! [`QueryId`](fdc_cq::intern::QueryId) (sharded slot vectors instead of
//! hash maps), and pairs with the parallel batch entry point
//! [`label_queries_parallel`] for high-throughput serving.  Callers holding
//! pre-interned ids label through `CachedLabeler::label_interned` /
//! `label_queries_interned` without touching a hash function at all.
//!
//! The GLB machinery of Section 5.1 ([`unify::gen_mgu`],
//! [`unify::glb_singleton`]) and the generic labeling procedures of
//! Sections 3.3 and 4 ([`algorithms`]) are also exposed, both for
//! completeness and because the examples and the test suite exercise the
//! paper's worked examples through them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod dissect;
pub mod error;
pub mod label;
pub mod labeler;
pub mod pool;
pub mod rewriting_order;
pub mod security_views;
pub mod unify;

pub use error::{LabelError, Result};
pub use label::{AtomLabel, DisclosureLabel, PackedLabel, ViewMask};
pub use labeler::{
    label_queries_parallel, map_chunks_parallel, map_chunks_parallel_with_threshold,
    BaselineLabeler, BitVectorLabeler, CacheStats, CachedLabeler, HashPartitionedLabeler,
    LabelerSnapshot, QueryLabeler, SharedQueryInterner, DEFAULT_CACHE_CAPACITY,
    POOLED_BATCH_THRESHOLD, SMALL_BATCH_SEQUENTIAL_THRESHOLD,
};
pub use pool::{
    EpochPin, PendingBatch, PoolStats, WorkerContext, WorkerPool, WORKER_QUEUE_CAPACITY,
};
pub use security_views::{
    SecurityViewId, SecurityViews, MAX_PACKED_VIEWS_PER_RELATION, MAX_VIEWS_PER_RELATION,
};
